//! Property tests for the Fig. 10/11 shift injections.
//!
//! The drift-sentinel and OOD experiments all lean on `loansim` actually
//! injecting the shifts it claims to: the covariate shift of
//! underrepresented provinces (paper Fig. 1/10), the 2020 collapse of the
//! spurious channel couplings (Fig. 10, Table V), and the COVID concept
//! shift that decouples defaults from the risk features (Fig. 11). These
//! tests pin each injection to its *target moments* — per-province feature
//! means, PSI between the pre-2020 and 2020 slices, and single-feature
//! ranking power — so a generator regression cannot silently invalidate
//! the downstream invariance results.
//!
//! Target values derive from the structural model in
//! `crates/loansim/src/generate.rs`:
//!
//! - latent `u ~ N(0.6·feature_shift, 1)`;
//! - `credit_score = 620 + 70u + 12ε` (clamped to [300, 850]), so the
//!   per-province mean sits near `620 + 42·feature_shift`;
//! - `ln(income) = 8.6 + 0.45u + 0.35·feature_shift + 0.22ε`, so the
//!   log-mean sits near `8.6 + 0.62·feature_shift`;
//! - spurious column j moves by `0.42/(1+0.4j)·γ_e(year, half)·(2y−1)`,
//!   with γ collapsing in 2020 in proportion to the province's lost
//!   transaction share (Guangdong: 1.60 → 0.48);
//! - in 2020-H1 the risk slope is diluted by
//!   `min(0.32·covid_shock_h1, 0.5)` (Hubei: 0.448), eroding every
//!   feature's ranking power in that slice.

use lightmirm_metrics::{auc, psi};
use loansim::schema::{BANK_RANGE, SPURIOUS_RANGE};
use loansim::{generate, GeneratorConfig, LoanFrame, ProvinceCatalog, ProvinceId};
use proptest::prelude::*;

/// Pre-2020-only config: every row is a training-year row, which keeps the
/// thin provinces (Xinjiang has a 0.6 % share) at usable sample sizes.
fn training_years(rows: usize, seed: u64) -> GeneratorConfig {
    GeneratorConfig {
        rows,
        seed,
        year_weights: (2016..=2019).map(|y| (y, 1.0)).collect(),
        ..Default::default()
    }
}

/// Values of feature column `col` over the rows passing `keep`.
fn column_where(
    frame: &LoanFrame,
    col: usize,
    keep: impl Fn(u16, u8, ProvinceId) -> bool,
) -> Vec<f64> {
    frame
        .filter_rows(keep)
        .into_iter()
        .map(|r| frame.row(r)[col] as f64)
        .collect()
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Covariate shift, first moment: each province's mean credit score
    /// tracks `620 + 42·feature_shift`, so Xinjiang (shift −0.35) sits a
    /// predictable ~15 points below Guangdong (shift 0).
    #[test]
    fn credit_score_means_track_the_province_feature_shift(seed in 100u64..120) {
        let f = generate(&training_years(120_000, seed));
        let cat = ProvinceCatalog::standard();
        let col = BANK_RANGE.start; // credit_score
        let mean_of = |name: &str| {
            let id = cat.id_of(name).unwrap();
            let vals = column_where(&f, col, |_, _, p| p == id);
            assert!(vals.len() > 300, "{name}: only {} rows", vals.len());
            mean(&vals)
        };
        for (name, shift) in [("Guangdong", 0.0), ("Heilongjiang", 0.05), ("Xinjiang", -0.35)] {
            let target = 620.0 + 42.0 * shift;
            let m = mean_of(name);
            prop_assert!(
                (m - target).abs() < 8.0,
                "{name}: mean credit score {m:.1} should be near {target:.1}"
            );
        }
        let gap = mean_of("Guangdong") - mean_of("Xinjiang");
        prop_assert!(
            (6.0..24.0).contains(&gap),
            "Guangdong−Xinjiang credit gap {gap:.1} should be near 42·0.35 ≈ 14.7"
        );
    }

    /// Covariate shift, second channel: log-income means follow
    /// `8.6 + 0.62·feature_shift` (both the latent and the direct
    /// development term move income).
    #[test]
    fn log_income_means_track_the_province_feature_shift(seed in 200u64..220) {
        let f = generate(&training_years(120_000, seed));
        let cat = ProvinceCatalog::standard();
        let col = 1; // APPLICANT_RANGE: [age, income, ...]
        for (name, shift) in [("Guangdong", 0.0), ("Xinjiang", -0.35)] {
            let id = cat.id_of(name).unwrap();
            let logs: Vec<f64> = column_where(&f, col, |_, _, p| p == id)
                .into_iter()
                .map(f64::ln)
                .collect();
            let target = 8.6 + 0.62 * shift;
            let m = mean(&logs);
            prop_assert!(
                (m - target).abs() < 0.08,
                "{name}: log-income mean {m:.3} should be near {target:.3}"
            );
        }
    }

    /// Fig. 10 covariate shift as PSI: the 2020 collapse of the spurious
    /// coupling is *province-graded*. Guangdong's γ falls 1.60 → ~0.4–0.48
    /// (share halved), a drift the sentinel must see; Xinjiang's γ is 0.10
    /// to begin with, so its 2020 slice barely moves on this column.
    #[test]
    fn spurious_channel_psi_is_province_graded_in_2020(seed in 300u64..320) {
        let f = generate(&GeneratorConfig::small(300_000, seed));
        let cat = ProvinceCatalog::standard();
        let col = SPURIOUS_RANGE.start;
        let psi_for = |name: &str| {
            let id = cat.id_of(name).unwrap();
            let pre = column_where(&f, col, |y, _, p| p == id && y < 2020);
            let post = column_where(&f, col, |y, _, p| p == id && y == 2020);
            assert!(post.len() > 150, "{name}: only {} 2020 rows", post.len());
            psi(&pre, &post, 5).expect("non-empty slices").psi
        };
        let gd = psi_for("Guangdong");
        let xj = psi_for("Xinjiang");
        prop_assert!(gd > 0.05, "Guangdong spurious-channel PSI {gd:.4} should flag drift");
        prop_assert!(xj < 0.04, "Xinjiang spurious-channel PSI {xj:.4} should stay quiet");
        prop_assert!(
            gd > 3.0 * xj,
            "drift must be province-graded: Guangdong {gd:.4} vs Xinjiang {xj:.4}"
        );
    }

    /// Fig. 11 concept shift: in Hubei's 2020-H1 slice the risk slope is
    /// diluted by 0.448, so the *same* feature ranks defaults visibly
    /// worse there than pre-2020 — while the base rate spikes. This is a
    /// concept shift (P(y|x) moves), not a covariate shift.
    #[test]
    fn hubei_2020_h1_dilutes_single_feature_ranking_power(seed in 400u64..420) {
        let f = generate(&GeneratorConfig::small(300_000, seed));
        let cat = ProvinceCatalog::standard();
        let hb = cat.id_of("Hubei").unwrap();
        let col = BANK_RANGE.start; // credit_score: lower score → riskier
        let slice_auc = |keep: &dyn Fn(u16, u8) -> bool| {
            let rows = f.filter_rows(|y, h, p| p == hb && keep(y, h));
            let scores: Vec<f64> = rows.iter().map(|&r| -(f.row(r)[col] as f64)).collect();
            let labels: Vec<u8> = rows.iter().map(|&r| f.label[r]).collect();
            assert!(labels.len() > 400, "only {} Hubei rows", labels.len());
            auc(&scores, &labels).expect("both classes present")
        };
        let pre = slice_auc(&|y, _| y < 2020);
        let h1 = slice_auc(&|y, h| y == 2020 && h == 0);
        prop_assert!(pre > 0.60, "pre-2020 credit-score AUC {pre:.3} should be informative");
        prop_assert!(
            pre - h1 > 0.02,
            "2020-H1 AUC {h1:.3} should sit visibly below pre-2020 {pre:.3}"
        );
        // The same slice's base rate spikes: exogenous defaults, not a
        // quieter market.
        let rate = |rows: &[usize]| {
            rows.iter().filter(|&&r| f.label[r] != 0).count() as f64 / rows.len() as f64
        };
        let pre_rate = rate(&f.filter_rows(|y, _, p| p == hb && y < 2020));
        let h1_rate = rate(&f.filter_rows(|y, h, p| p == hb && y == 2020 && h == 0));
        prop_assert!(
            h1_rate > pre_rate + 0.05,
            "H1 default rate {h1_rate:.3} should spike above pre-2020 {pre_rate:.3}"
        );
    }
}
