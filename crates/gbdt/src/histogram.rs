//! Gradient/hessian histograms and the subtraction trick.
//!
//! For each (leaf, feature) pair the grower accumulates, per bin, the sums
//! of gradients and hessians plus a count. The best split of a leaf is
//! found by a linear scan over bins. When a leaf splits, only the smaller
//! child's histogram is rebuilt from data; the larger child's is obtained
//! by subtracting the small child from the parent — halving histogram
//! construction cost, as in LightGBM.

/// Per-bin accumulator.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BinStats {
    pub grad: f64,
    pub hess: f64,
    pub count: u32,
}

/// Histogram of one feature over the rows of one leaf.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FeatureHistogram {
    bins: Vec<BinStats>,
}

impl FeatureHistogram {
    /// Zeroed histogram with `n_bins` slots.
    pub fn zeros(n_bins: usize) -> Self {
        FeatureHistogram {
            bins: vec![BinStats::default(); n_bins],
        }
    }

    /// Accumulate the rows in `rows` using the feature's bin codes.
    pub fn build(
        codes: &[u8],
        rows: &[u32],
        grads: &[f64],
        hessians: &[f64],
        n_bins: usize,
    ) -> Self {
        let mut h = Self::zeros(n_bins);
        for &r in rows {
            let r = r as usize;
            let b = codes[r] as usize;
            let slot = &mut h.bins[b];
            slot.grad += grads[r];
            slot.hess += hessians[r];
            slot.count += 1;
        }
        h
    }

    /// `self = parent - other`, the subtraction trick.
    ///
    /// # Panics
    ///
    /// Panics if bin counts differ (histograms of different features).
    pub fn subtract_from(&self, other: &FeatureHistogram) -> FeatureHistogram {
        assert_eq!(self.bins.len(), other.bins.len(), "bin count mismatch");
        let bins = self
            .bins
            .iter()
            .zip(&other.bins)
            .map(|(p, c)| BinStats {
                grad: p.grad - c.grad,
                hess: p.hess - c.hess,
                count: p.count - c.count,
            })
            .collect();
        FeatureHistogram { bins }
    }

    /// Per-bin stats in bin order.
    pub fn bins(&self) -> &[BinStats] {
        &self.bins
    }

    /// Totals across all bins.
    pub fn totals(&self) -> BinStats {
        let mut t = BinStats::default();
        for b in &self.bins {
            t.grad += b.grad;
            t.hess += b.hess;
            t.count += b.count;
        }
        t
    }
}

/// A candidate split of one leaf.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitCandidate {
    pub feature: u32,
    /// Go left when `bin <= threshold_bin`.
    pub threshold_bin: u8,
    pub gain: f64,
    pub left_count: u32,
    pub right_count: u32,
}

/// Leaf-score objective: `score(G, H) = G² / (H + λ)`.
fn leaf_score(grad: f64, hess: f64, lambda: f64) -> f64 {
    grad * grad / (hess + lambda)
}

/// Scan a histogram for the best split.
///
/// Gain is the standard second-order criterion
/// `score(G_L,H_L) + score(G_R,H_R) − score(G,H)` with L2 penalty
/// `lambda`. Splits leaving fewer than `min_data_in_leaf` rows on a side
/// are skipped. Returns `None` when no split beats `min_gain`.
pub fn best_split(
    hist: &FeatureHistogram,
    feature: u32,
    lambda: f64,
    min_data_in_leaf: u32,
    min_gain: f64,
) -> Option<SplitCandidate> {
    let totals = hist.totals();
    let parent = leaf_score(totals.grad, totals.hess, lambda);
    let mut left = BinStats::default();
    let mut best: Option<SplitCandidate> = None;
    // Splitting after the last bin sends everything left; skip it.
    for (b, stats) in hist.bins().iter().enumerate().take(hist.bins().len() - 1) {
        left.grad += stats.grad;
        left.hess += stats.hess;
        left.count += stats.count;
        let right_count = totals.count - left.count;
        if left.count < min_data_in_leaf || right_count < min_data_in_leaf {
            continue;
        }
        let right_grad = totals.grad - left.grad;
        let right_hess = totals.hess - left.hess;
        let gain = leaf_score(left.grad, left.hess, lambda)
            + leaf_score(right_grad, right_hess, lambda)
            - parent;
        if gain > min_gain && best.is_none_or(|c| gain > c.gain) {
            best = Some(SplitCandidate {
                feature,
                threshold_bin: b as u8,
                gain,
                left_count: left.count,
                right_count,
            });
        }
    }
    best
}

/// Optimal leaf value for the accumulated gradients: `-G / (H + λ)`.
pub fn leaf_value(grad: f64, hess: f64, lambda: f64) -> f64 {
    -grad / (hess + lambda)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_accumulates_per_bin() {
        let codes = [0u8, 1, 1, 2];
        let rows = [0u32, 1, 2, 3];
        let grads = [1.0, 2.0, 3.0, 4.0];
        let hess = [0.1, 0.2, 0.3, 0.4];
        let h = FeatureHistogram::build(&codes, &rows, &grads, &hess, 3);
        assert_eq!(
            h.bins()[0],
            BinStats {
                grad: 1.0,
                hess: 0.1,
                count: 1
            }
        );
        assert_eq!(
            h.bins()[1],
            BinStats {
                grad: 5.0,
                hess: 0.5,
                count: 2
            }
        );
        assert_eq!(
            h.bins()[2],
            BinStats {
                grad: 4.0,
                hess: 0.4,
                count: 1
            }
        );
    }

    #[test]
    fn build_respects_row_subset() {
        let codes = [0u8, 1, 1, 2];
        let grads = [1.0, 2.0, 3.0, 4.0];
        let hess = [1.0; 4];
        let h = FeatureHistogram::build(&codes, &[1, 3], &grads, &hess, 3);
        assert_eq!(h.totals().count, 2);
        assert_eq!(h.bins()[0].count, 0);
    }

    #[test]
    fn subtraction_recovers_sibling() {
        let codes = [0u8, 1, 0, 2, 1, 2];
        let grads = [1.0, -1.0, 2.0, 0.5, 1.5, -0.5];
        let hess = [0.2; 6];
        let all_rows: Vec<u32> = (0..6).collect();
        let parent = FeatureHistogram::build(&codes, &all_rows, &grads, &hess, 3);
        let left = FeatureHistogram::build(&codes, &[0, 2, 4], &grads, &hess, 3);
        let right_direct = FeatureHistogram::build(&codes, &[1, 3, 5], &grads, &hess, 3);
        let right_sub = parent.subtract_from(&left);
        for (a, b) in right_sub.bins().iter().zip(right_direct.bins()) {
            assert!((a.grad - b.grad).abs() < 1e-12);
            assert!((a.hess - b.hess).abs() < 1e-12);
            assert_eq!(a.count, b.count);
        }
    }

    #[test]
    fn best_split_finds_clean_cut() {
        // Bin 0: all negative gradients; bin 1: all positive. The obvious
        // split is after bin 0.
        let mut h = FeatureHistogram::zeros(2);
        h.bins[0] = BinStats {
            grad: -10.0,
            hess: 5.0,
            count: 50,
        };
        h.bins[1] = BinStats {
            grad: 10.0,
            hess: 5.0,
            count: 50,
        };
        let s = best_split(&h, 3, 1.0, 1, 0.0).unwrap();
        assert_eq!(s.feature, 3);
        assert_eq!(s.threshold_bin, 0);
        assert!(s.gain > 0.0);
        assert_eq!(s.left_count, 50);
        assert_eq!(s.right_count, 50);
    }

    #[test]
    fn best_split_rejects_small_leaves() {
        let mut h = FeatureHistogram::zeros(2);
        h.bins[0] = BinStats {
            grad: -10.0,
            hess: 5.0,
            count: 3,
        };
        h.bins[1] = BinStats {
            grad: 10.0,
            hess: 5.0,
            count: 50,
        };
        assert!(best_split(&h, 0, 1.0, 5, 0.0).is_none());
    }

    #[test]
    fn best_split_requires_min_gain() {
        let mut h = FeatureHistogram::zeros(2);
        // Homogeneous gradients: zero gain split.
        h.bins[0] = BinStats {
            grad: 5.0,
            hess: 5.0,
            count: 50,
        };
        h.bins[1] = BinStats {
            grad: 5.0,
            hess: 5.0,
            count: 50,
        };
        assert!(best_split(&h, 0, 1.0, 1, 1e-6).is_none());
    }

    #[test]
    fn best_split_none_for_single_bin() {
        let h = FeatureHistogram::zeros(1);
        assert!(best_split(&h, 0, 1.0, 1, 0.0).is_none());
    }

    #[test]
    fn leaf_value_is_newton_step() {
        assert!((leaf_value(-4.0, 3.0, 1.0) - 1.0).abs() < 1e-12);
        assert!((leaf_value(4.0, 3.0, 1.0) + 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "bin count mismatch")]
    fn subtraction_rejects_mismatched_width() {
        let a = FeatureHistogram::zeros(2);
        let b = FeatureHistogram::zeros(3);
        let _ = a.subtract_from(&b);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn gain_is_nonnegative_when_reported(
                grads in proptest::collection::vec(-5.0f64..5.0, 8..64),
            ) {
                let n = grads.len();
                let codes: Vec<u8> = (0..n).map(|i| (i % 8) as u8).collect();
                let hess: Vec<f64> = vec![0.25; n];
                let rows: Vec<u32> = (0..n as u32).collect();
                let h = FeatureHistogram::build(&codes, &rows, &grads, &hess, 8);
                if let Some(s) = best_split(&h, 0, 1.0, 1, 0.0) {
                    prop_assert!(s.gain >= 0.0);
                    prop_assert_eq!(s.left_count + s.right_count, n as u32);
                }
            }

            #[test]
            fn totals_match_direct_sums(
                grads in proptest::collection::vec(-5.0f64..5.0, 1..64),
            ) {
                let n = grads.len();
                let codes: Vec<u8> = (0..n).map(|i| (i % 4) as u8).collect();
                let hess: Vec<f64> = grads.iter().map(|g| g.abs() + 0.1).collect();
                let rows: Vec<u32> = (0..n as u32).collect();
                let h = FeatureHistogram::build(&codes, &rows, &grads, &hess, 4);
                let t = h.totals();
                prop_assert!((t.grad - grads.iter().sum::<f64>()).abs() < 1e-9);
                prop_assert!((t.hess - hess.iter().sum::<f64>()).abs() < 1e-9);
                prop_assert_eq!(t.count as usize, n);
            }
        }
    }
}
