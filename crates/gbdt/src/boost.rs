//! Gradient boosting driver: binary-logloss objective, shrinkage, early
//! stopping, prediction, and the GBDT+LR leaf-index transform.

use crate::binning::BinnedDataset;
use crate::grow::{grow_tree_sampled, GrowConfig};
use crate::tree::Tree;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Hyper-parameters of a boosted ensemble.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GbdtConfig {
    /// Number of boosting rounds (trees).
    pub n_trees: usize,
    /// Shrinkage applied to every leaf value.
    pub learning_rate: f64,
    /// Maximum bins for feature discretization.
    pub max_bins: usize,
    /// Per-tree structural parameters.
    pub grow: GrowConfig,
    /// Stop when the validation logloss has not improved for this many
    /// rounds (requires a validation set in [`Gbdt::fit_with_valid`]).
    pub early_stopping_rounds: Option<usize>,
    /// Fraction of features considered per tree (LightGBM
    /// `feature_fraction`); `1.0` disables sub-sampling.
    pub feature_fraction: f64,
    /// Fraction of rows used per tree (LightGBM `bagging_fraction`);
    /// `1.0` disables bagging.
    pub bagging_fraction: f64,
    /// Seed for the stochastic knobs (irrelevant when both fractions are
    /// `1.0`).
    pub seed: u64,
}

impl Default for GbdtConfig {
    fn default() -> Self {
        GbdtConfig {
            n_trees: 100,
            learning_rate: 0.1,
            max_bins: 255,
            grow: GrowConfig::default(),
            early_stopping_rounds: None,
            feature_fraction: 1.0,
            bagging_fraction: 1.0,
            seed: 0,
        }
    }
}

/// Errors from training.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GbdtError {
    /// Features/labels disagree in length or the matrix is ragged.
    ShapeMismatch { rows: usize, labels: usize },
    /// The training set is empty.
    Empty,
    /// Labels are all one class; boosting logloss degenerates.
    SingleClass,
}

impl std::fmt::Display for GbdtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GbdtError::ShapeMismatch { rows, labels } => {
                write!(f, "{rows} feature rows but {labels} labels")
            }
            GbdtError::Empty => write!(f, "empty training set"),
            GbdtError::SingleClass => write!(f, "labels contain a single class"),
        }
    }
}

impl std::error::Error for GbdtError {}

/// A trained gradient-boosted ensemble for binary classification.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Gbdt {
    trees: Vec<Tree>,
    /// Prior log-odds added to every prediction.
    base_score: f64,
    n_features: usize,
    /// `leaf_offsets[t]` = index of tree `t`'s leaf 0 in the concatenated
    /// one-hot layout; the last entry is the total leaf count.
    leaf_offsets: Vec<u32>,
    /// Total split gain per feature across all trees.
    feature_importance: Vec<f64>,
}

fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

fn logloss(scores: &[f64], labels: &[u8]) -> f64 {
    let mut total = 0.0;
    for (&s, &y) in scores.iter().zip(labels) {
        let p = sigmoid(s).clamp(1e-12, 1.0 - 1e-12);
        total -= if y != 0 { p.ln() } else { (1.0 - p).ln() };
    }
    total / scores.len() as f64
}

impl Gbdt {
    /// Train on a row-major matrix without a validation set.
    ///
    /// # Errors
    ///
    /// See [`GbdtError`].
    pub fn fit(
        features: &[f32],
        n_features: usize,
        labels: &[u8],
        config: &GbdtConfig,
    ) -> Result<Self, GbdtError> {
        Self::fit_with_valid(features, n_features, labels, None, config)
    }

    /// Train with an optional `(features, labels)` validation set used for
    /// early stopping.
    ///
    /// # Errors
    ///
    /// See [`GbdtError`].
    pub fn fit_with_valid(
        features: &[f32],
        n_features: usize,
        labels: &[u8],
        valid: Option<(&[f32], &[u8])>,
        config: &GbdtConfig,
    ) -> Result<Self, GbdtError> {
        if n_features == 0 || !features.len().is_multiple_of(n_features) {
            return Err(GbdtError::ShapeMismatch {
                rows: 0,
                labels: labels.len(),
            });
        }
        let n_rows = features.len() / n_features;
        if n_rows != labels.len() {
            return Err(GbdtError::ShapeMismatch {
                rows: n_rows,
                labels: labels.len(),
            });
        }
        if n_rows == 0 {
            return Err(GbdtError::Empty);
        }
        let pos = labels.iter().filter(|&&y| y != 0).count();
        if pos == 0 || pos == n_rows {
            return Err(GbdtError::SingleClass);
        }

        let data = BinnedDataset::fit(features, n_features, config.max_bins);
        let prior = pos as f64 / n_rows as f64;
        let base_score = (prior / (1.0 - prior)).ln();

        let mut model = Gbdt {
            trees: Vec::with_capacity(config.n_trees),
            base_score,
            n_features,
            leaf_offsets: vec![0],
            feature_importance: vec![0.0; n_features],
        };

        let mut scores = vec![base_score; n_rows];
        let mut grads = vec![0.0f64; n_rows];
        let mut hessians = vec![0.0f64; n_rows];

        let mut valid_scores: Option<Vec<f64>> =
            valid.map(|(vf, _)| vec![base_score; vf.len() / n_features]);
        let mut best_loss = f64::INFINITY;
        let mut best_len = 0usize;
        let mut stall = 0usize;

        assert!(
            (0.0..=1.0).contains(&config.feature_fraction) && config.feature_fraction > 0.0,
            "feature_fraction must be in (0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&config.bagging_fraction) && config.bagging_fraction > 0.0,
            "bagging_fraction must be in (0, 1]"
        );
        let stochastic = config.feature_fraction < 1.0 || config.bagging_fraction < 1.0;
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);

        for _round in 0..config.n_trees {
            for i in 0..n_rows {
                let p = sigmoid(scores[i]);
                grads[i] = p - labels[i] as f64;
                hessians[i] = (p * (1.0 - p)).max(1e-16);
            }
            // Per-tree stochastic knobs: a random feature mask and row bag.
            let feature_mask: Option<Vec<bool>> = (config.feature_fraction < 1.0).then(|| {
                let keep = ((n_features as f64 * config.feature_fraction).round() as usize)
                    .clamp(1, n_features);
                let mut picks: Vec<usize> = (0..n_features).collect();
                picks.shuffle(&mut rng);
                let mut mask = vec![false; n_features];
                for &f in &picks[..keep] {
                    mask[f] = true;
                }
                mask
            });
            let bag: Option<Vec<u32>> = (config.bagging_fraction < 1.0).then(|| {
                (0..n_rows as u32)
                    .filter(|_| rng.gen::<f64>() < config.bagging_fraction)
                    .collect()
            });
            let bag = match bag {
                // An unlucky empty bag falls back to the full row set.
                Some(b) if b.is_empty() => None,
                other => other,
            };
            let mut grown = grow_tree_sampled(
                &data,
                &grads,
                &hessians,
                &config.grow,
                bag.as_deref(),
                feature_mask.as_deref(),
            );
            // Shrinkage folds into the stored leaf values so that
            // prediction is a plain sum over trees.
            grown.tree = scale_leaves(grown.tree, config.learning_rate);
            if stochastic {
                // Bagged trees must also update out-of-bag rows: route each
                // row through the raw-threshold tree.
                for (i, score) in scores.iter_mut().enumerate() {
                    *score += grown
                        .tree
                        .predict(&features[i * n_features..(i + 1) * n_features]);
                }
            } else {
                for (leaf_idx, rows) in grown.leaf_rows.iter().enumerate() {
                    let value = leaf_output(&grown.tree, leaf_idx as u32);
                    for &r in rows {
                        scores[r as usize] += value;
                    }
                }
            }
            for (imp, g) in model.feature_importance.iter_mut().zip(&grown.feature_gain) {
                *imp += g;
            }
            let n_leaves = grown.tree.n_leaves();
            model.trees.push(grown.tree);
            model
                .leaf_offsets
                .push(model.leaf_offsets.last().unwrap() + n_leaves);

            if let (Some((vf, vy)), Some(vs)) = (valid, valid_scores.as_mut()) {
                let tree = model.trees.last().expect("just pushed");
                for (row_idx, score) in vs.iter_mut().enumerate() {
                    *score += tree.predict(&vf[row_idx * n_features..(row_idx + 1) * n_features]);
                }
                let loss = logloss(vs, vy);
                if loss < best_loss - 1e-9 {
                    best_loss = loss;
                    best_len = model.trees.len();
                    stall = 0;
                } else {
                    stall += 1;
                    if config
                        .early_stopping_rounds
                        .is_some_and(|rounds| stall >= rounds)
                    {
                        break;
                    }
                }
            }
        }

        // Truncate to the best validation point when early stopping ran.
        if valid.is_some() && config.early_stopping_rounds.is_some() && best_len > 0 {
            model.trees.truncate(best_len);
            model.leaf_offsets.truncate(best_len + 1);
        }
        Ok(model)
    }

    /// Number of trees in the ensemble.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// One tree of the ensemble (for inspection/explanation).
    pub fn tree(&self, t: usize) -> &Tree {
        &self.trees[t]
    }

    /// Feature width expected by prediction.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Total leaves across all trees — the dimension `N` of the GBDT+LR
    /// multi-hot feature space.
    pub fn total_leaves(&self) -> usize {
        *self.leaf_offsets.last().expect("offsets never empty") as usize
    }

    /// Total split gain per feature (importance).
    pub fn feature_importance(&self) -> &[f64] {
        &self.feature_importance
    }

    /// Raw log-odds prediction for one row.
    pub fn predict_logit(&self, row: &[f32]) -> f64 {
        debug_assert_eq!(row.len(), self.n_features);
        self.base_score + self.trees.iter().map(|t| t.predict(row)).sum::<f64>()
    }

    /// Default probability for one row.
    pub fn predict_proba(&self, row: &[f32]) -> f64 {
        sigmoid(self.predict_logit(row))
    }

    /// Default probabilities for a row-major matrix.
    pub fn predict_proba_batch(&self, features: &[f32]) -> Vec<f64> {
        features
            .chunks_exact(self.n_features)
            .map(|row| self.predict_proba(row))
            .collect()
    }

    /// The GBDT+LR transform of one row: for each tree, the global index
    /// of the leaf the row falls in (`leaf_offsets[t] + leaf`). The result
    /// is the sparse encoding of the concatenated one-hot vector —
    /// exactly `n_trees` active positions out of [`Gbdt::total_leaves`].
    pub fn transform_row(&self, row: &[f32], out: &mut Vec<u32>) {
        out.clear();
        out.reserve(self.trees.len());
        for (t, tree) in self.trees.iter().enumerate() {
            out.push(self.leaf_offsets[t] + tree.leaf_index(row));
        }
    }

    /// Transform a row-major matrix into flat CSR-style indices: row `i`
    /// occupies `indices[i*n_trees..(i+1)*n_trees]`.
    pub fn transform_batch(&self, features: &[f32]) -> Vec<u32> {
        let mut out = Vec::with_capacity(features.len() / self.n_features * self.trees.len());
        let mut row_buf = Vec::new();
        for row in features.chunks_exact(self.n_features) {
            self.transform_row(row, &mut row_buf);
            out.extend_from_slice(&row_buf);
        }
        out
    }
}

fn scale_leaves(tree: Tree, factor: f64) -> Tree {
    use crate::tree::Node;
    let n_leaves = tree.n_leaves();
    let nodes = tree
        .nodes()
        .iter()
        .map(|n| match *n {
            Node::Leaf { value, index } => Node::Leaf {
                value: value * factor,
                index,
            },
            ref split => split.clone(),
        })
        .collect();
    Tree::from_nodes(nodes, n_leaves)
}

fn leaf_output(tree: &Tree, leaf: u32) -> f64 {
    use crate::tree::Node;
    tree.nodes()
        .iter()
        .find_map(|n| match *n {
            Node::Leaf { value, index } if index == leaf => Some(value),
            _ => None,
        })
        .expect("leaf index exists")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A nonlinear but learnable binary problem on 2 features.
    fn ring_data(n: usize) -> (Vec<f32>, Vec<u8>) {
        let mut feats = Vec::with_capacity(n * 2);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            // Low-discrepancy grid points in [-1,1]^2.
            let x = ((i * 2654435761_usize) % 1000) as f32 / 500.0 - 1.0;
            let y = ((i * 40503_usize) % 1000) as f32 / 500.0 - 1.0;
            feats.extend_from_slice(&[x, y]);
            labels.push(((x * x + y * y) < 0.5) as u8);
        }
        (feats, labels)
    }

    fn quick_config(n_trees: usize) -> GbdtConfig {
        GbdtConfig {
            n_trees,
            learning_rate: 0.3,
            max_bins: 64,
            grow: GrowConfig {
                max_leaves: 8,
                min_data_in_leaf: 5,
                lambda_l2: 1.0,
                min_gain: 1e-6,
            },
            ..Default::default()
        }
    }

    #[test]
    fn learns_a_nonlinear_boundary() {
        let (feats, labels) = ring_data(2000);
        let model = Gbdt::fit(&feats, 2, &labels, &quick_config(40)).unwrap();
        let probs = model.predict_proba_batch(&feats);
        let correct = probs
            .iter()
            .zip(&labels)
            .filter(|&(&p, &y)| (p >= 0.5) == (y != 0))
            .count();
        let acc = correct as f64 / labels.len() as f64;
        assert!(acc > 0.95, "train accuracy {acc} too low");
    }

    #[test]
    fn more_trees_reduce_training_loss() {
        let (feats, labels) = ring_data(1000);
        let small = Gbdt::fit(&feats, 2, &labels, &quick_config(3)).unwrap();
        let large = Gbdt::fit(&feats, 2, &labels, &quick_config(30)).unwrap();
        let loss = |m: &Gbdt| {
            let scores: Vec<f64> = feats
                .chunks_exact(2)
                .map(|row| m.predict_logit(row))
                .collect();
            logloss(&scores, &labels)
        };
        assert!(loss(&large) < loss(&small));
    }

    #[test]
    fn base_score_matches_prior() {
        let (feats, labels) = ring_data(500);
        let model = Gbdt::fit(&feats, 2, &labels, &quick_config(0)).unwrap();
        assert_eq!(model.n_trees(), 0);
        let prior = labels.iter().filter(|&&y| y != 0).count() as f64 / labels.len() as f64;
        let p = model.predict_proba(&[0.0, 0.0]);
        assert!((p - prior).abs() < 1e-9);
    }

    #[test]
    fn transform_has_one_index_per_tree() {
        let (feats, labels) = ring_data(500);
        let model = Gbdt::fit(&feats, 2, &labels, &quick_config(10)).unwrap();
        let mut idx = Vec::new();
        model.transform_row(&feats[0..2], &mut idx);
        assert_eq!(idx.len(), model.n_trees());
        // Indices fall in disjoint per-tree ranges and are sorted.
        for w in idx.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!((*idx.last().unwrap() as usize) < model.total_leaves());
    }

    #[test]
    fn transform_batch_matches_row_transform() {
        let (feats, labels) = ring_data(300);
        let model = Gbdt::fit(&feats, 2, &labels, &quick_config(5)).unwrap();
        let batch = model.transform_batch(&feats);
        let mut row_buf = Vec::new();
        for (i, row) in feats.chunks_exact(2).enumerate() {
            model.transform_row(row, &mut row_buf);
            assert_eq!(&batch[i * 5..(i + 1) * 5], row_buf.as_slice());
        }
    }

    #[test]
    fn total_leaves_matches_offsets() {
        let (feats, labels) = ring_data(500);
        let model = Gbdt::fit(&feats, 2, &labels, &quick_config(7)).unwrap();
        let direct: usize = (0..model.n_trees())
            .map(|t| (model.leaf_offsets[t + 1] - model.leaf_offsets[t]) as usize)
            .sum();
        assert_eq!(direct, model.total_leaves());
    }

    #[test]
    fn early_stopping_truncates() {
        let (feats, labels) = ring_data(1200);
        let (train_f, valid_f) = feats.split_at(1600);
        let (train_y, valid_y) = labels.split_at(800);
        let mut config = quick_config(200);
        config.early_stopping_rounds = Some(5);
        let model =
            Gbdt::fit_with_valid(train_f, 2, train_y, Some((valid_f, valid_y)), &config).unwrap();
        assert!(
            model.n_trees() < 200,
            "expected early stop, got {}",
            model.n_trees()
        );
        assert_eq!(model.leaf_offsets.len(), model.n_trees() + 1);
    }

    #[test]
    fn errors_on_bad_shapes() {
        assert!(matches!(
            Gbdt::fit(&[1.0, 2.0, 3.0], 2, &[0, 1], &quick_config(1)),
            Err(GbdtError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            Gbdt::fit(&[1.0, 2.0], 2, &[0, 1], &quick_config(1)),
            Err(GbdtError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            Gbdt::fit(&[], 2, &[], &quick_config(1)),
            Err(GbdtError::Empty)
        ));
        assert!(matches!(
            Gbdt::fit(&[1.0, 2.0, 3.0, 4.0], 2, &[1, 1], &quick_config(1)),
            Err(GbdtError::SingleClass)
        ));
    }

    #[test]
    fn probabilities_are_probabilities() {
        let (feats, labels) = ring_data(400);
        let model = Gbdt::fit(&feats, 2, &labels, &quick_config(15)).unwrap();
        for p in model.predict_proba_batch(&feats) {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn importance_concentrates_on_informative_features() {
        // Feature 1 is pure noise, feature 0 determines the label.
        let n = 1000;
        let mut feats = Vec::with_capacity(n * 2);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let x = (i % 100) as f32 / 100.0;
            let noise = ((i * 2654435761_usize) % 97) as f32;
            feats.extend_from_slice(&[x, noise]);
            labels.push((x > 0.5) as u8);
        }
        let model = Gbdt::fit(&feats, 2, &labels, &quick_config(10)).unwrap();
        let imp = model.feature_importance();
        assert!(imp[0] > 10.0 * imp[1].max(1e-12));
    }

    #[test]
    fn stochastic_knobs_train_and_stay_deterministic() {
        let (feats, labels) = ring_data(1500);
        let mut config = quick_config(20);
        config.feature_fraction = 0.5;
        config.bagging_fraction = 0.7;
        config.seed = 9;
        let a = Gbdt::fit(&feats, 2, &labels, &config).unwrap();
        let b = Gbdt::fit(&feats, 2, &labels, &config).unwrap();
        assert_eq!(a, b);
        // Still learns the ring.
        let probs = a.predict_proba_batch(&feats);
        let acc = probs
            .iter()
            .zip(&labels)
            .filter(|&(&p, &y)| (p >= 0.5) == (y != 0))
            .count() as f64
            / labels.len() as f64;
        assert!(acc > 0.9, "stochastic train accuracy {acc}");
        // A different seed gives a different ensemble.
        config.seed = 10;
        let c = Gbdt::fit(&feats, 2, &labels, &config).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn full_fractions_match_the_deterministic_path() {
        let (feats, labels) = ring_data(500);
        let mut config = quick_config(5);
        config.feature_fraction = 1.0;
        config.bagging_fraction = 1.0;
        config.seed = 123; // must be irrelevant
        let a = Gbdt::fit(&feats, 2, &labels, &config).unwrap();
        config.seed = 456;
        let b = Gbdt::fit(&feats, 2, &labels, &config).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn training_is_deterministic() {
        let (feats, labels) = ring_data(500);
        let a = Gbdt::fit(&feats, 2, &labels, &quick_config(5)).unwrap();
        let b = Gbdt::fit(&feats, 2, &labels, &quick_config(5)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn serde_round_trip() {
        let (feats, labels) = ring_data(300);
        let model = Gbdt::fit(&feats, 2, &labels, &quick_config(4)).unwrap();
        let json = serde_json::to_string(&model).unwrap();
        let back: Gbdt = serde_json::from_str(&json).unwrap();
        assert_eq!(model, back);
    }
}
