//! Decision-tree structure shared by training and inference.
//!
//! Trees are stored as flat node arrays. Internal nodes split on
//! `feature value <= threshold` (raw-value threshold recovered from the
//! bin upper edge at training time); leaves carry both an output value and
//! a stable *leaf index*, which is what the GBDT+LR transform consumes.

use serde::{Deserialize, Serialize};

/// One node of a tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Node {
    /// Internal split: `go left when value[feature] <= threshold`.
    Split {
        feature: u32,
        threshold: f32,
        left: u32,
        right: u32,
    },
    /// Terminal leaf.
    Leaf {
        /// Additive output of this leaf (log-odds contribution).
        value: f64,
        /// Dense leaf index in `0..tree.n_leaves()`, assigned in creation
        /// order; used as the categorical code of the GBDT+LR transform.
        index: u32,
    },
}

/// A trained regression tree.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Tree {
    nodes: Vec<Node>,
    n_leaves: u32,
}

impl Tree {
    /// A single-leaf tree with constant output (used when no split gains).
    pub fn stump(value: f64) -> Self {
        Tree {
            nodes: vec![Node::Leaf { value, index: 0 }],
            n_leaves: 1,
        }
    }

    /// Build from parts; used by the grower.
    pub(crate) fn from_nodes(nodes: Vec<Node>, n_leaves: u32) -> Self {
        debug_assert!(n_leaves >= 1);
        Tree { nodes, n_leaves }
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> u32 {
        self.n_leaves
    }

    /// Number of nodes (splits + leaves).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// All nodes, root first.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Route a raw feature row to its leaf; returns `(leaf index, value)`.
    pub fn route(&self, row: &[f32]) -> (u32, f64) {
        let mut node = 0usize;
        loop {
            match self.nodes[node] {
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    // NaN routes right (treated as "greater"), matching the
                    // binning rule that unseen values land high.
                    let v = row[feature as usize];
                    node = if v <= threshold {
                        left as usize
                    } else {
                        right as usize
                    };
                }
                Node::Leaf { value, index } => return (index, value),
            }
        }
    }

    /// The additive output for a raw feature row.
    pub fn predict(&self, row: &[f32]) -> f64 {
        self.route(row).1
    }

    /// The leaf index for a raw feature row (GBDT+LR transform).
    pub fn leaf_index(&self, row: &[f32]) -> u32 {
        self.route(row).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-built tree:
    ///         f0 <= 1.0
    ///        /          \
    ///   leaf0(-1.0)   f1 <= 5.0
    ///                /        \
    ///           leaf1(2.0)  leaf2(3.0)
    fn demo_tree() -> Tree {
        Tree::from_nodes(
            vec![
                Node::Split {
                    feature: 0,
                    threshold: 1.0,
                    left: 1,
                    right: 2,
                },
                Node::Leaf {
                    value: -1.0,
                    index: 0,
                },
                Node::Split {
                    feature: 1,
                    threshold: 5.0,
                    left: 3,
                    right: 4,
                },
                Node::Leaf {
                    value: 2.0,
                    index: 1,
                },
                Node::Leaf {
                    value: 3.0,
                    index: 2,
                },
            ],
            3,
        )
    }

    #[test]
    fn routing_follows_thresholds() {
        let t = demo_tree();
        assert_eq!(t.route(&[0.5, 0.0]), (0, -1.0));
        assert_eq!(t.route(&[1.0, 0.0]), (0, -1.0)); // boundary goes left
        assert_eq!(t.route(&[2.0, 4.0]), (1, 2.0));
        assert_eq!(t.route(&[2.0, 6.0]), (2, 3.0));
    }

    #[test]
    fn nan_routes_right() {
        let t = demo_tree();
        assert_eq!(t.route(&[f32::NAN, 6.0]).0, 2);
    }

    #[test]
    fn stump_always_returns_value() {
        let t = Tree::stump(0.25);
        assert_eq!(t.predict(&[1.0, 2.0, 3.0]), 0.25);
        assert_eq!(t.leaf_index(&[9.0]), 0);
        assert_eq!(t.n_leaves(), 1);
    }

    #[test]
    fn leaf_indices_are_dense() {
        let t = demo_tree();
        let mut seen = [false; 3];
        for node in t.nodes() {
            if let Node::Leaf { index, .. } = node {
                seen[*index as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(t.n_leaves(), 3);
    }

    #[test]
    fn serde_round_trip() {
        let t = demo_tree();
        let json = serde_json::to_string(&t).unwrap();
        let back: Tree = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
