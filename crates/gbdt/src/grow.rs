//! Leaf-wise (best-first) tree growth over binned data.
//!
//! LightGBM's distinguishing growth strategy: instead of expanding level by
//! level, always split the leaf with the highest gain until `max_leaves`
//! leaves exist or no leaf has a positive-gain split. The smaller child's
//! histograms are built from data; the larger child's come from the
//! subtraction trick.

use crate::binning::BinnedDataset;
use crate::histogram::{best_split, leaf_value, FeatureHistogram, SplitCandidate};
use crate::tree::{Node, Tree};

/// Structural hyper-parameters of a single tree.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GrowConfig {
    /// Maximum number of leaves per tree (LightGBM `num_leaves`).
    pub max_leaves: u32,
    /// Minimum rows per leaf.
    pub min_data_in_leaf: u32,
    /// L2 regularization λ on leaf values.
    pub lambda_l2: f64,
    /// Minimum gain for a split to be accepted.
    pub min_gain: f64,
}

impl Default for GrowConfig {
    fn default() -> Self {
        GrowConfig {
            max_leaves: 31,
            min_data_in_leaf: 20,
            lambda_l2: 1.0,
            min_gain: 1e-6,
        }
    }
}

/// A grown tree plus which training rows landed in each leaf — the boost
/// loop uses the assignment to update scores without re-routing.
#[derive(Debug)]
pub struct GrownTree {
    pub tree: Tree,
    /// `leaf_rows[leaf_index]` = training rows in that leaf.
    pub leaf_rows: Vec<Vec<u32>>,
    /// Total split gain attributed to each feature (importance).
    pub feature_gain: Vec<f64>,
}

struct WorkingLeaf {
    /// Slot in the provisional node array to patch when this leaf splits.
    node_slot: usize,
    rows: Vec<u32>,
    hists: Vec<FeatureHistogram>,
    best: Option<SplitCandidate>,
}

/// Grow one tree against per-row gradients and hessians.
///
/// # Panics
///
/// Panics when `grads`/`hessians` lengths differ from the dataset rows.
pub fn grow_tree(
    data: &BinnedDataset,
    grads: &[f64],
    hessians: &[f64],
    config: &GrowConfig,
) -> GrownTree {
    grow_tree_sampled(data, grads, hessians, config, None, None)
}

/// [`grow_tree`] restricted to a row subset (bagging) and/or a feature
/// subset (feature sub-sampling). `allowed_features[f] = false` removes
/// feature `f` from split consideration for this tree.
///
/// # Panics
///
/// Panics on length mismatches, an empty row subset, or a feature mask of
/// the wrong width.
pub fn grow_tree_sampled(
    data: &BinnedDataset,
    grads: &[f64],
    hessians: &[f64],
    config: &GrowConfig,
    row_subset: Option<&[u32]>,
    allowed_features: Option<&[bool]>,
) -> GrownTree {
    assert_eq!(grads.len(), data.n_rows(), "gradient length mismatch");
    assert_eq!(hessians.len(), data.n_rows(), "hessian length mismatch");
    assert!(config.max_leaves >= 1);
    if let Some(mask) = allowed_features {
        assert_eq!(mask.len(), data.n_features(), "feature mask width mismatch");
    }

    let n_features = data.n_features();
    let mut feature_gain = vec![0.0f64; n_features];

    let all_rows: Vec<u32> = match row_subset {
        Some(rows) => {
            assert!(!rows.is_empty(), "empty bagging subset");
            rows.to_vec()
        }
        None => (0..data.n_rows() as u32).collect(),
    };
    let root_hists = build_histograms(data, &all_rows, grads, hessians);
    let root_best = scan_best_masked(&root_hists, config, allowed_features);

    // Provisional flat tree; leaves are patched into splits as they grow.
    let mut nodes: Vec<Node> = vec![Node::Leaf {
        value: 0.0,
        index: u32::MAX,
    }];
    let mut working = vec![WorkingLeaf {
        node_slot: 0,
        rows: all_rows,
        hists: root_hists,
        best: root_best,
    }];
    let mut finalized: Vec<WorkingLeaf> = Vec::new();

    while (working.len() + finalized.len()) < config.max_leaves as usize {
        // Pick the working leaf with the highest splittable gain.
        let Some(pick) = working
            .iter()
            .enumerate()
            .filter_map(|(i, l)| l.best.map(|b| (i, b.gain)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("gains are finite"))
            .map(|(i, _)| i)
        else {
            break; // nothing splittable
        };
        let leaf = working.swap_remove(pick);
        let split = leaf.best.expect("picked leaves have splits");
        feature_gain[split.feature as usize] += split.gain;

        // Partition rows by the chosen bin threshold.
        let codes = data.feature_codes(split.feature as usize);
        let mut left_rows = Vec::with_capacity(split.left_count as usize);
        let mut right_rows = Vec::with_capacity(split.right_count as usize);
        for &r in &leaf.rows {
            if codes[r as usize] <= split.threshold_bin {
                left_rows.push(r);
            } else {
                right_rows.push(r);
            }
        }
        debug_assert_eq!(left_rows.len(), split.left_count as usize);
        debug_assert_eq!(right_rows.len(), split.right_count as usize);

        // Build the smaller child's histograms; subtract for the larger.
        let (small_rows, _large_rows, small_is_left) = if left_rows.len() <= right_rows.len() {
            (&left_rows, &right_rows, true)
        } else {
            (&right_rows, &left_rows, false)
        };
        let small_hists = build_histograms(data, small_rows, grads, hessians);
        let large_hists: Vec<FeatureHistogram> = leaf
            .hists
            .iter()
            .zip(&small_hists)
            .map(|(parent, small)| parent.subtract_from(small))
            .collect();
        let (left_hists, right_hists) = if small_is_left {
            (small_hists, large_hists)
        } else {
            (large_hists, small_hists)
        };

        // Patch the parent slot into a split and append the two children.
        let left_slot = nodes.len();
        let right_slot = nodes.len() + 1;
        let threshold = data
            .mapper(split.feature as usize)
            .upper_edge(split.threshold_bin);
        nodes[leaf.node_slot] = Node::Split {
            feature: split.feature,
            threshold,
            left: left_slot as u32,
            right: right_slot as u32,
        };
        nodes.push(Node::Leaf {
            value: 0.0,
            index: u32::MAX,
        });
        nodes.push(Node::Leaf {
            value: 0.0,
            index: u32::MAX,
        });

        for (slot, rows, hists) in [
            (left_slot, left_rows, left_hists),
            (right_slot, right_rows, right_hists),
        ] {
            let best = scan_best_masked(&hists, config, allowed_features);
            let child = WorkingLeaf {
                node_slot: slot,
                rows,
                hists,
                best,
            };
            // A leaf that can never split again still counts toward
            // max_leaves; keep it in `working` only if splittable so the
            // loop guard stays simple.
            if child.best.is_some() {
                working.push(child);
            } else {
                finalized.push(child);
            }
        }
    }
    finalized.append(&mut working);

    // Assign dense leaf indices and optimal values.
    let mut leaf_rows: Vec<Vec<u32>> = Vec::with_capacity(finalized.len());
    for (leaf_idx, leaf) in finalized.into_iter().enumerate() {
        let totals = leaf.hists.first().map(|h| h.totals()).unwrap_or_default();
        let value = leaf_value(totals.grad, totals.hess, config.lambda_l2);
        nodes[leaf.node_slot] = Node::Leaf {
            value,
            index: leaf_idx as u32,
        };
        leaf_rows.push(leaf.rows);
    }
    let n_leaves = leaf_rows.len() as u32;
    GrownTree {
        tree: Tree::from_nodes(nodes, n_leaves),
        leaf_rows,
        feature_gain,
    }
}

fn build_histograms(
    data: &BinnedDataset,
    rows: &[u32],
    grads: &[f64],
    hessians: &[f64],
) -> Vec<FeatureHistogram> {
    use rayon::prelude::*;
    // Per-feature histograms are independent; parallelize when the work is
    // large enough to amortize the fork/join (the sequential path keeps
    // single-core boxes and tiny leaves fast).
    if rows.len() * data.n_features() < 1 << 16 {
        (0..data.n_features())
            .map(|f| {
                FeatureHistogram::build(
                    data.feature_codes(f),
                    rows,
                    grads,
                    hessians,
                    data.mapper(f).n_bins(),
                )
            })
            .collect()
    } else {
        (0..data.n_features())
            .into_par_iter()
            .map(|f| {
                FeatureHistogram::build(
                    data.feature_codes(f),
                    rows,
                    grads,
                    hessians,
                    data.mapper(f).n_bins(),
                )
            })
            .collect()
    }
}

fn scan_best_masked(
    hists: &[FeatureHistogram],
    config: &GrowConfig,
    allowed: Option<&[bool]>,
) -> Option<SplitCandidate> {
    hists
        .iter()
        .enumerate()
        .filter(|(f, _)| allowed.is_none_or(|mask| mask[*f]))
        .filter_map(|(f, h)| {
            best_split(
                h,
                f as u32,
                config.lambda_l2,
                config.min_data_in_leaf,
                config.min_gain,
            )
        })
        .max_by(|a, b| a.gain.partial_cmp(&b.gain).expect("gains are finite"))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Gradients for squared loss toward targets: grad = pred - y with
    /// pred = 0, hess = 1.
    fn regression_grads(targets: &[f64]) -> (Vec<f64>, Vec<f64>) {
        (
            targets.iter().map(|&y| -y).collect(),
            vec![1.0; targets.len()],
        )
    }

    fn cfg(max_leaves: u32, min_leaf: u32) -> GrowConfig {
        GrowConfig {
            max_leaves,
            min_data_in_leaf: min_leaf,
            lambda_l2: 0.0,
            min_gain: 1e-9,
        }
    }

    #[test]
    fn splits_a_step_function_exactly() {
        // y = 1 for x > 0.5, else 0. One split suffices.
        let n = 100;
        let feats: Vec<f32> = (0..n).map(|i| i as f32 / n as f32).collect();
        let targets: Vec<f64> = feats.iter().map(|&x| (x > 0.5) as u8 as f64).collect();
        let data = BinnedDataset::fit(&feats, 1, 255);
        let (g, h) = regression_grads(&targets);
        let grown = grow_tree(&data, &g, &h, &cfg(2, 1));
        assert_eq!(grown.tree.n_leaves(), 2);
        // Check predictions recover the step.
        for (i, &x) in feats.iter().enumerate() {
            let p = grown.tree.predict(&[x]);
            assert!(
                (p - targets[i]).abs() < 1e-9,
                "x={x} pred={p} want={}",
                targets[i]
            );
        }
    }

    #[test]
    fn leaf_rows_partition_the_data() {
        let n = 200;
        let feats: Vec<f32> = (0..n).map(|i| ((i * 37) % n) as f32).collect();
        let targets: Vec<f64> = feats.iter().map(|&x| (x as f64 * 0.1).sin()).collect();
        let data = BinnedDataset::fit(&feats, 1, 32);
        let (g, h) = regression_grads(&targets);
        let grown = grow_tree(&data, &g, &h, &cfg(8, 5));
        let mut seen = vec![false; n];
        for rows in &grown.leaf_rows {
            for &r in rows {
                assert!(!seen[r as usize], "row {r} in two leaves");
                seen[r as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn leaf_assignment_matches_routing() {
        let n = 300;
        let feats: Vec<f32> = (0..n)
            .flat_map(|i| [((i * 13) % 97) as f32, ((i * 7) % 31) as f32])
            .collect();
        let targets: Vec<f64> = (0..n).map(|i| ((i % 5) as f64) - 2.0).collect();
        let data = BinnedDataset::fit(&feats, 2, 32);
        let (g, h) = regression_grads(&targets);
        let grown = grow_tree(&data, &g, &h, &cfg(12, 5));
        for (leaf_idx, rows) in grown.leaf_rows.iter().enumerate() {
            for &r in rows {
                let row = &feats[r as usize * 2..r as usize * 2 + 2];
                assert_eq!(
                    grown.tree.leaf_index(row),
                    leaf_idx as u32,
                    "row {r} routed inconsistently"
                );
            }
        }
    }

    #[test]
    fn respects_max_leaves() {
        let n = 500;
        let feats: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let targets: Vec<f64> = (0..n)
            .map(|i| ((i as u64 * 2654435761) % 100) as f64)
            .collect();
        let data = BinnedDataset::fit(&feats, 1, 255);
        let (g, h) = regression_grads(&targets);
        for max_leaves in [1u32, 2, 4, 7, 16] {
            let grown = grow_tree(&data, &g, &h, &cfg(max_leaves, 1));
            assert!(grown.tree.n_leaves() <= max_leaves);
        }
    }

    #[test]
    fn max_leaves_one_gives_stump() {
        let feats = [1.0f32, 2.0, 3.0, 4.0];
        let data = BinnedDataset::fit(&feats, 1, 8);
        let (g, h) = regression_grads(&[0.0, 0.0, 1.0, 1.0]);
        let grown = grow_tree(&data, &g, &h, &cfg(1, 1));
        assert_eq!(grown.tree.n_leaves(), 1);
        // Value is the global Newton step: -sum(g)/sum(h) = mean target.
        assert!((grown.tree.predict(&[9.0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn min_data_in_leaf_blocks_splits() {
        let feats = [0.0f32, 1.0, 2.0, 3.0];
        let data = BinnedDataset::fit(&feats, 1, 8);
        let (g, h) = regression_grads(&[0.0, 0.0, 1.0, 1.0]);
        let grown = grow_tree(&data, &g, &h, &cfg(4, 3));
        // No split can give both sides >= 3 of 4 rows.
        assert_eq!(grown.tree.n_leaves(), 1);
    }

    #[test]
    fn pure_targets_do_not_split() {
        let feats = [0.0f32, 1.0, 2.0, 3.0];
        let data = BinnedDataset::fit(&feats, 1, 8);
        let (g, h) = regression_grads(&[2.0, 2.0, 2.0, 2.0]);
        let grown = grow_tree(&data, &g, &h, &cfg(8, 1));
        assert_eq!(grown.tree.n_leaves(), 1);
    }

    #[test]
    fn feature_mask_excludes_features_from_splits() {
        // Both features informative; masking feature 0 forces splits on 1.
        let n = 200;
        let feats: Vec<f32> = (0..n).flat_map(|i| [i as f32, (n - i) as f32]).collect();
        let targets: Vec<f64> = (0..n).map(|i| (i >= 100) as u8 as f64).collect();
        let data = BinnedDataset::fit(&feats, 2, 32);
        let (g, h) = regression_grads(&targets);
        let grown = grow_tree_sampled(&data, &g, &h, &cfg(4, 1), None, Some(&[false, true]));
        assert_eq!(grown.feature_gain[0], 0.0);
        assert!(grown.feature_gain[1] > 0.0);
    }

    #[test]
    fn row_subset_limits_leaf_rows() {
        let n = 100;
        let feats: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let targets: Vec<f64> = (0..n).map(|i| (i >= 50) as u8 as f64).collect();
        let data = BinnedDataset::fit(&feats, 1, 32);
        let (g, h) = regression_grads(&targets);
        let subset: Vec<u32> = (0..n as u32).step_by(2).collect();
        let grown = grow_tree_sampled(&data, &g, &h, &cfg(4, 1), Some(&subset), None);
        let covered: usize = grown.leaf_rows.iter().map(Vec::len).sum();
        assert_eq!(covered, subset.len());
        for rows in &grown.leaf_rows {
            for &r in rows {
                assert!(r.is_multiple_of(2), "row {r} outside the bag");
            }
        }
    }

    #[test]
    fn feature_gain_attributes_to_informative_feature() {
        // Feature 0 carries signal, feature 1 is constant.
        let n = 100;
        let feats: Vec<f32> = (0..n).flat_map(|i| [i as f32, 1.0]).collect();
        let targets: Vec<f64> = (0..n).map(|i| (i >= 50) as u8 as f64).collect();
        let data = BinnedDataset::fit(&feats, 2, 32);
        let (g, h) = regression_grads(&targets);
        let grown = grow_tree(&data, &g, &h, &cfg(4, 1));
        assert!(grown.feature_gain[0] > 0.0);
        assert_eq!(grown.feature_gain[1], 0.0);
    }

    #[test]
    fn two_feature_interaction_needs_depth() {
        // Additive + interaction target over two binary features: fitting
        // it exactly needs all 4 cells, and (unlike pure XOR) the first
        // greedy split already has positive gain.
        let rows = [
            (0.0f32, 0.0f32, 0.0f64),
            (0.0, 1.0, 1.0),
            (1.0, 0.0, 2.0),
            (1.0, 1.0, 5.0),
        ];
        let mut feats = Vec::new();
        let mut targets = Vec::new();
        for &(a, b, y) in rows.iter().cycle().take(400) {
            feats.extend_from_slice(&[a, b]);
            targets.push(y);
        }
        let data = BinnedDataset::fit(&feats, 2, 8);
        let (g, h) = regression_grads(&targets);
        let grown = grow_tree(&data, &g, &h, &cfg(4, 1));
        assert_eq!(grown.tree.n_leaves(), 4);
        for &(a, b, y) in &rows {
            assert!((grown.tree.predict(&[a, b]) - y).abs() < 1e-9);
        }
    }
}
