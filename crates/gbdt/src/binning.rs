//! Quantile binning: the "histogram" in histogram-based GBDT.
//!
//! Each feature is discretized into at most 255 bins whose edges are
//! (approximate) quantiles of the training distribution. Training then
//! works on `u8` bin codes, which makes split finding a pass over ≤255
//! histogram slots instead of a sort over all values — the core LightGBM
//! trick.

/// Maps raw feature values to bin codes for one feature.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BinMapper {
    /// Ascending upper-inclusive bin edges: bin `b` holds values
    /// `edges[b-1] < v <= edges[b]`; the last bin additionally holds
    /// everything above the last edge.
    edges: Vec<f32>,
}

impl BinMapper {
    /// Build a mapper from the training values of one feature.
    ///
    /// Edges are placed at evenly spaced quantiles over the *distinct*
    /// values, so constant features get a single bin and low-cardinality
    /// (categorical-coded) features get one bin per value.
    pub fn fit(values: &[f32], max_bins: usize) -> Self {
        assert!((1..=255).contains(&max_bins), "1..=255 bins supported");
        let mut sorted: Vec<f32> = values.iter().copied().filter(|v| v.is_finite()).collect();
        sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite values"));
        sorted.dedup();
        if sorted.is_empty() {
            return BinMapper { edges: vec![0.0] };
        }
        if sorted.len() <= max_bins {
            return BinMapper { edges: sorted };
        }
        // Evenly spaced quantiles over the distinct values. Using distinct
        // values (not raw ranks) keeps heavily-tied features from wasting
        // bins on duplicates of the same value.
        let mut edges = Vec::with_capacity(max_bins);
        for b in 1..=max_bins {
            let q = b as f64 / max_bins as f64;
            let idx = ((q * sorted.len() as f64).ceil() as usize - 1).min(sorted.len() - 1);
            edges.push(sorted[idx]);
        }
        edges.dedup();
        BinMapper { edges }
    }

    /// Number of bins (codes are `0..n_bins`).
    pub fn n_bins(&self) -> usize {
        self.edges.len()
    }

    /// Map a raw value to its bin code. Values above the last edge (unseen
    /// at fit time) fall into the last bin; NaN falls into bin 0.
    pub fn bin(&self, value: f32) -> u8 {
        if value.is_nan() {
            return 0;
        }
        // Binary search for the first edge >= value.
        let mut lo = 0usize;
        let mut hi = self.edges.len();
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.edges[mid] < value {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo.min(self.edges.len() - 1) as u8
    }

    /// The raw-value threshold of a split "bin <= t": the upper edge of
    /// bin `t`, so prediction on raw values reproduces binned training.
    pub fn upper_edge(&self, bin: u8) -> f32 {
        self.edges[bin as usize]
    }
}

/// A fully binned training set, column-major.
#[derive(Debug, Clone)]
pub struct BinnedDataset {
    mappers: Vec<BinMapper>,
    /// `codes[f]` holds the bin code of every row for feature `f`.
    codes: Vec<Vec<u8>>,
    n_rows: usize,
}

impl BinnedDataset {
    /// Bin a row-major feature matrix (`n_rows × n_features`).
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` is not a multiple of `n_features`.
    pub fn fit(features: &[f32], n_features: usize, max_bins: usize) -> Self {
        assert!(n_features > 0, "need at least one feature");
        assert_eq!(
            features.len() % n_features,
            0,
            "matrix length must be a multiple of the width"
        );
        let n_rows = features.len() / n_features;
        let mut mappers = Vec::with_capacity(n_features);
        let mut codes = Vec::with_capacity(n_features);
        let mut column = vec![0.0f32; n_rows];
        for f in 0..n_features {
            for (r, slot) in column.iter_mut().enumerate() {
                *slot = features[r * n_features + f];
            }
            let mapper = BinMapper::fit(&column, max_bins);
            let col_codes: Vec<u8> = column.iter().map(|&v| mapper.bin(v)).collect();
            mappers.push(mapper);
            codes.push(col_codes);
        }
        BinnedDataset {
            mappers,
            codes,
            n_rows,
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of features.
    pub fn n_features(&self) -> usize {
        self.mappers.len()
    }

    /// Bin codes of one feature column.
    pub fn feature_codes(&self, feature: usize) -> &[u8] {
        &self.codes[feature]
    }

    /// The mapper of one feature.
    pub fn mapper(&self, feature: usize) -> &BinMapper {
        &self.mappers[feature]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_feature_gets_one_bin() {
        let m = BinMapper::fit(&[5.0; 100], 255);
        assert_eq!(m.n_bins(), 1);
        assert_eq!(m.bin(5.0), 0);
        assert_eq!(m.bin(-1.0), 0);
        assert_eq!(m.bin(99.0), 0);
    }

    #[test]
    fn low_cardinality_gets_exact_bins() {
        let vals = [0.0f32, 1.0, 2.0, 1.0, 0.0, 2.0];
        let m = BinMapper::fit(&vals, 255);
        assert_eq!(m.n_bins(), 3);
        assert_eq!(m.bin(0.0), 0);
        assert_eq!(m.bin(1.0), 1);
        assert_eq!(m.bin(2.0), 2);
    }

    #[test]
    fn binning_respects_edges() {
        let vals: Vec<f32> = (0..1000).map(|i| i as f32).collect();
        let m = BinMapper::fit(&vals, 10);
        assert!(m.n_bins() <= 10);
        // Boundary semantics: values equal to an edge map to that bin.
        for b in 0..m.n_bins() as u8 {
            assert_eq!(m.bin(m.upper_edge(b)), b);
        }
    }

    #[test]
    fn binning_is_monotone() {
        let vals: Vec<f32> = (0..500).map(|i| (i as f32).sin() * 10.0).collect();
        let m = BinMapper::fit(&vals, 32);
        let mut sorted = vals.clone();
        sorted.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        for w in sorted.windows(2) {
            assert!(m.bin(w[0]) <= m.bin(w[1]));
        }
    }

    #[test]
    fn out_of_range_values_clamp() {
        let vals: Vec<f32> = (0..100).map(|i| i as f32).collect();
        let m = BinMapper::fit(&vals, 16);
        assert_eq!(m.bin(-1e9), 0);
        assert_eq!(m.bin(1e9) as usize, m.n_bins() - 1);
        assert_eq!(m.bin(f32::NAN), 0);
    }

    #[test]
    fn bins_split_mass_roughly_evenly() {
        let vals: Vec<f32> = (0..10_000).map(|i| i as f32).collect();
        let m = BinMapper::fit(&vals, 10);
        let mut counts = vec![0usize; m.n_bins()];
        for &v in &vals {
            counts[m.bin(v) as usize] += 1;
        }
        for &c in &counts {
            assert!(
                (800..=1200).contains(&c),
                "bin sizes {counts:?} should be near 1000"
            );
        }
    }

    #[test]
    fn dataset_binning_round_trip() {
        // 3 rows × 2 features.
        let feats = [1.0f32, 10.0, 2.0, 20.0, 3.0, 30.0];
        let ds = BinnedDataset::fit(&feats, 2, 255);
        assert_eq!(ds.n_rows(), 3);
        assert_eq!(ds.n_features(), 2);
        assert_eq!(ds.feature_codes(0), &[0, 1, 2]);
        assert_eq!(ds.feature_codes(1), &[0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "multiple of the width")]
    fn dataset_rejects_ragged_matrix() {
        let _ = BinnedDataset::fit(&[1.0, 2.0, 3.0], 2, 255);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn bin_codes_in_range(
                vals in proptest::collection::vec(-1e6f32..1e6, 1..200),
                max_bins in 1usize..64,
            ) {
                let m = BinMapper::fit(&vals, max_bins);
                prop_assert!(m.n_bins() <= max_bins);
                for &v in &vals {
                    prop_assert!((m.bin(v) as usize) < m.n_bins());
                }
            }

            #[test]
            fn binning_preserves_order(
                vals in proptest::collection::vec(-1e3f32..1e3, 2..100),
            ) {
                let m = BinMapper::fit(&vals, 16);
                for &a in &vals {
                    for &b in &vals {
                        if a < b {
                            prop_assert!(m.bin(a) <= m.bin(b));
                        }
                    }
                }
            }

            #[test]
            fn distinct_values_up_to_bins_are_separated(
                mut vals in proptest::collection::btree_set(-1000i32..1000, 2..20),
            ) {
                let v: Vec<f32> = vals.iter().map(|&x| x as f32).collect();
                let m = BinMapper::fit(&v, 255);
                // With enough bins, distinct values must get distinct codes.
                let codes: std::collections::BTreeSet<u8> =
                    v.iter().map(|&x| m.bin(x)).collect();
                prop_assert_eq!(codes.len(), v.len());
                vals.clear();
            }
        }
    }
}
