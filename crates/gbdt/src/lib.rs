//! `lightmirm-gbdt` — histogram-based gradient boosted decision trees.
//!
//! A from-scratch, LightGBM-style GBDT implementing exactly what the
//! LightMIRM paper's feature-extraction module needs:
//!
//! - **quantile binning** into ≤255 bins per feature ([`binning`]);
//! - **leaf-wise (best-first) growth** with the histogram-subtraction
//!   trick and L2-regularised second-order gain ([`grow`], [`histogram`]);
//! - **binary-logloss boosting** with shrinkage and validation-based early
//!   stopping ([`boost`]);
//! - the **GBDT+LR transform**: each tree maps a raw row to a leaf index;
//!   concatenated one-hot leaf encodings form the multi-hot input of the
//!   downstream logistic-regression model ([`Gbdt::transform_row`]).
//!
//! # Quick start
//!
//! ```
//! use lightmirm_gbdt::{Gbdt, GbdtConfig};
//!
//! // Tiny toy problem: y = x0 > 0.5, with a noise feature.
//! let mut feats = Vec::new();
//! let mut labels = Vec::new();
//! for i in 0..200 {
//!     let x = (i % 100) as f32 / 100.0;
//!     feats.extend_from_slice(&[x, (i % 7) as f32]);
//!     labels.push((x > 0.5) as u8);
//! }
//! let model = Gbdt::fit(&feats, 2, &labels, &GbdtConfig::default()).unwrap();
//! assert!(model.predict_proba(&[0.9, 0.0]) > 0.5);
//! assert!(model.predict_proba(&[0.1, 0.0]) < 0.5);
//! ```

pub mod binning;
pub mod boost;
pub mod grow;
pub mod histogram;
pub mod tree;

pub use binning::{BinMapper, BinnedDataset};
pub use boost::{Gbdt, GbdtConfig, GbdtError};
pub use grow::{grow_tree, GrowConfig, GrownTree};
pub use histogram::{best_split, BinStats, FeatureHistogram, SplitCandidate};
pub use tree::{Node, Tree};
