//! `lightmirm-serve` — the embeddable online scoring engine.
//!
//! The offline pipeline ends in a [`lightmirm_core::bundle::ModelBundle`];
//! this crate is what a scoring service wraps around one. Requests (one or
//! more raw feature rows plus their province ids) enter a **bounded
//! micro-batching work queue**: they accumulate until `max_batch` rows are
//! waiting or the oldest request has aged past `max_wait`, are scored by a
//! worker pool riding the batched kernel path
//! ([`ModelBundle::score_batch`] → `core::kernels::predict_rows_into`),
//! and the scores fan back out to each caller.
//!
//! Guarantees:
//!
//! - **Determinism** — scoring is elementwise per row, so the returned
//!   probabilities are bit-identical to offline
//!   `TrainedModel::predict_rows`, regardless of how the stream is split
//!   into requests, how requests coalesce into micro-batches, or how many
//!   workers run (verified in `tests/serve_equivalence.rs`).
//! - **Backpressure** — the queue is bounded in rows;
//!   [`ScoringEngine::submit`] blocks until space frees, while
//!   [`ScoringEngine::try_submit`] returns [`SubmitError::QueueFull`]
//!   immediately so callers can shed load. Above the configurable
//!   `shed_watermark`, [`Priority::Low`] traffic is rejected with
//!   [`SubmitError::Shed`] before the queue hard-fills.
//! - **Fault isolation** — every accepted request is answered exactly
//!   once with scores or a structured [`ScoreError`]: scoring panics are
//!   caught and retried up to `max_attempts` (then
//!   [`ScoreError::Poisoned`]), dead workers are respawned, locks recover
//!   from poisoning, expired batches answer
//!   [`ScoreError::DeadlineExceeded`], and non-finite input rows are
//!   quarantined per [`lightmirm_core::bundle::QuarantinePolicy`] without
//!   perturbing their batch neighbors. The `failpoints`-gated chaos suite
//!   (`tests/chaos.rs`) injects panics, delays, and I/O errors to verify
//!   the no-hang / no-silent-corruption contract deterministically.
//! - **Hot reload** — [`ScoringEngine::reload`] validates a candidate
//!   bundle on a probe batch and swaps it atomically; a failed candidate
//!   is rolled back with the incumbent still serving and no in-flight
//!   disruption.
//! - **Graceful drain** — [`ScoringEngine::shutdown`] (and `Drop`) stops
//!   intake, flushes every queued request, and joins the workers
//!   (including respawned ones); no accepted request is ever dropped.
//! - **Telemetry** — per-request latency (both queue-admission → reply
//!   and submit-call → reply, the latter including submit-side blocking),
//!   pure per-batch score time, queue depth and micro-batch size
//!   histograms, plus fault counters (panics, retries, poisoned, shed,
//!   expired, quarantined, respawns, reloads). Flattened percentiles come
//!   from [`ScoringEngine::stats`]; the full bucket shape, exportable as
//!   Prometheus text or JSON through [`lightmirm_core::obs::export`],
//!   from [`ScoringEngine::metrics_snapshot`]. With the `obs` feature the
//!   engine additionally emits `process_batch` spans to the global
//!   tracer.
//! - **Drift sentinel** — with [`EngineConfig::monitor`] set and a
//!   bundle carrying a train-time
//!   [`DriftBaseline`](lightmirm_core::bundle::DriftBaseline), a
//!   [`DriftMonitor`] watches per-environment sliding windows of scores
//!   and monitored feature columns, periodically computing windowed PSI
//!   against the baseline: `drift_psi{env,signal}` gauges,
//!   `drift_escalation` trace events on band rises, and a
//!   [`ScoringEngine::drift_report`] snapshot. Strictly observation-only
//!   — scores are bit-identical with the sentinel armed or absent
//!   (`tests/monitor.rs`); hot reload rearms it against the incoming
//!   bundle's baseline.

//! - **Online adaptation** — [`adapt`] closes the drift loop: a
//!   [`LabelFeed`] buffers recent labeled rows per province (watermarked,
//!   byte-budgeted eviction), and a [`PromotionController`] turns a
//!   Major drift escalation into a warm-started LightMIRM retrain of the
//!   LR head (leaf transform frozen), validated through the probe-batch
//!   reload path and a golden-metric canary guard before promotion —
//!   with automatic bit-identical rollback to the pristine champion,
//!   retry-with-backoff on failed retrains, cooldown against flapping,
//!   and a lineage record persisted in the adapted bundle's CRC
//!   envelope.

pub mod adapt;
mod engine;
pub mod loadgen;
pub mod monitor;
pub mod registry;
pub mod ring;
pub mod shard;

pub use adapt::{
    AdaptConfig, AdaptEvent, AdaptOutcome, FeedConfig, FeedSnapshot, LabelFeed,
    PromotionController, RollbackReason,
};
pub use engine::{
    scoped_failpoint_site, EngineConfig, EngineStats, PendingScores, Priority, ReloadError,
    ScoreError, ScoredResponse, ScoringEngine, SubmitError, SubmitOptions,
};
pub use monitor::{DriftMonitor, DriftReport, EnvDrift, MonitorConfig, SignalDrift};
pub use registry::{ModelRegistry, RegistryConfig, RegistryError};
pub use shard::{OverflowPolicy, ShardConfig, ShardRouter, ShardedEngine};
// Re-export the quarantine vocabulary so engine embedders need not
// depend on `lightmirm-core` directly for configuration.
pub use lightmirm_core::bundle::{QuarantineFallback, QuarantinePolicy};
// Ditto the snapshot type `metrics_snapshot()` returns.
pub use lightmirm_core::obs::MetricsSnapshot;
