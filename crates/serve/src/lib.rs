//! `lightmirm-serve` — the embeddable online scoring engine.
//!
//! The offline pipeline ends in a [`lightmirm_core::bundle::ModelBundle`];
//! this crate is what a scoring service wraps around one. Requests (one or
//! more raw feature rows plus their province ids) enter a **bounded
//! micro-batching work queue**: they accumulate until `max_batch` rows are
//! waiting or the oldest request has aged past `max_wait`, are scored by a
//! worker pool riding the batched kernel path
//! ([`ModelBundle::score_batch`] → `core::kernels::predict_rows_into`),
//! and the scores fan back out to each caller.
//!
//! Guarantees:
//!
//! - **Determinism** — scoring is elementwise per row, so the returned
//!   probabilities are bit-identical to offline
//!   `TrainedModel::predict_rows`, regardless of how the stream is split
//!   into requests, how requests coalesce into micro-batches, or how many
//!   workers run (verified in `tests/serve_equivalence.rs`).
//! - **Backpressure** — the queue is bounded in rows;
//!   [`ScoringEngine::submit`] blocks until space frees, while
//!   [`ScoringEngine::try_submit`] returns [`SubmitError::QueueFull`]
//!   immediately so callers can shed load.
//! - **Graceful drain** — [`ScoringEngine::shutdown`] (and `Drop`) stops
//!   intake, flushes every queued request, and joins the workers; no
//!   accepted request is ever dropped.
//! - **Telemetry** — per-request latency, queue depth, and micro-batch
//!   size histograms built on [`lightmirm_core::timing::Histogram`],
//!   snapshotted by [`ScoringEngine::stats`].

mod engine;

pub use engine::{
    EngineConfig, EngineStats, PendingScores, ScoreError, ScoringEngine, SubmitError,
};
