//! Online drift sentinel: windowed PSI against the bundle's baseline.
//!
//! The paper's data analysis (§IV-B) shows the system's core risk is
//! distribution shift — provinces drift out of distribution between
//! training and serving. [`DriftMonitor`] is the serve-side layer that
//! *notices*: it maintains sliding-window per-environment distributions
//! of model scores and the monitored feature columns, and periodically
//! computes windowed PSI against the train-time
//! [`DriftBaseline`](lightmirm_core::bundle::DriftBaseline) carried in
//! the [`ModelBundle`](lightmirm_core::bundle::ModelBundle).
//!
//! Each check publishes `drift_psi{env,signal}` gauges to the global
//! metrics registry, emits a `drift_escalation` trace event whenever a
//! signal's [`DriftLevel`] rises, and refreshes the snapshot returned by
//! [`DriftMonitor::drift_report`].
//!
//! **Observation-only invariant**: the monitor reads scores and features
//! after they are computed and never feeds anything back into scoring.
//! Scores are bit-identical with the sentinel on or off — the same
//! guarantee `obs_determinism.rs` proves for metrics/tracing, proved for
//! the monitor by `crates/serve/tests/monitor.rs`.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Mutex;

use lightmirm_core::bundle::DriftBaseline;
use lightmirm_core::obs;
use lightmirm_metrics::drift::{psi, DriftLevel, PsiReport};
use serde::Serialize;

/// Tuning knobs of the drift sentinel.
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// Sliding-window capacity per (environment, signal), in rows.
    pub window: usize,
    /// Minimum rows in an environment's window before its first PSI
    /// computation (small windows make PSI pure noise).
    pub min_samples: usize,
    /// Recompute PSI every this many observed rows per environment.
    pub check_every: usize,
    /// Baseline-quantile bucket count for PSI.
    pub n_buckets: usize,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            window: 2048,
            min_samples: 64,
            check_every: 256,
            n_buckets: 10,
        }
    }
}

/// Drift state of one monitored signal in one environment.
#[derive(Debug, Clone, Serialize)]
pub struct SignalDrift {
    /// `"score"` or `"feature_<col>"`.
    pub signal: String,
    /// Latest windowed PSI.
    pub psi: f64,
    /// The PSI's standard band.
    pub level: DriftLevel,
    /// Full per-bucket breakdown of the latest check.
    pub report: PsiReport,
}

/// Drift state of one environment.
#[derive(Debug, Clone, Serialize)]
pub struct EnvDrift {
    /// Environment id.
    pub env_id: u16,
    /// Rows observed for this environment so far.
    pub rows: u64,
    /// PSI checks completed so far.
    pub checks: u64,
    /// Latest per-signal drift (empty until the first check).
    pub signals: Vec<SignalDrift>,
}

impl EnvDrift {
    /// The environment's worst signal band (`Stable` before any check).
    pub fn level(&self) -> DriftLevel {
        self.signals
            .iter()
            .map(|s| s.level)
            .max_by_key(|l| level_rank(*l))
            .unwrap_or(DriftLevel::Stable)
    }
}

/// Point-in-time snapshot of the sentinel across environments.
#[derive(Debug, Clone, Serialize)]
pub struct DriftReport {
    /// Per-environment drift, sorted by `env_id`. Environments with no
    /// train-time baseline are not monitored and do not appear.
    pub envs: Vec<EnvDrift>,
}

impl DriftReport {
    /// The report for `env_id`, when that environment is monitored.
    pub fn env(&self, env_id: u16) -> Option<&EnvDrift> {
        self.envs.iter().find(|e| e.env_id == env_id)
    }
}

fn level_rank(l: DriftLevel) -> u8 {
    match l {
        DriftLevel::Stable => 0,
        DriftLevel::Moderate => 1,
        DriftLevel::Major => 2,
    }
}

/// Per-environment sliding windows plus the latest check result.
struct EnvWindow {
    scores: VecDeque<f64>,
    /// One window per monitored baseline column, aligned with
    /// `DriftBaseline::columns`.
    features: Vec<VecDeque<f64>>,
    rows: u64,
    checks: u64,
    since_check: usize,
    signals: Vec<SignalDrift>,
}

/// The online drift sentinel. Thread-safe; the scoring engine calls
/// [`DriftMonitor::observe`] after each scored batch.
pub struct DriftMonitor {
    baseline: DriftBaseline,
    cfg: MonitorConfig,
    state: Mutex<BTreeMap<u16, EnvWindow>>,
}

impl DriftMonitor {
    /// Build a sentinel around a train-time baseline.
    pub fn new(baseline: DriftBaseline, cfg: MonitorConfig) -> Self {
        DriftMonitor {
            baseline,
            cfg,
            state: Mutex::new(BTreeMap::new()),
        }
    }

    /// The baseline the sentinel compares against.
    pub fn baseline(&self) -> &DriftBaseline {
        &self.baseline
    }

    /// Ingest one scored batch: `features` is row-major with
    /// `n_features` values per row, aligned with `scores`/`env_ids`.
    /// Rows with non-finite scores (quarantine fallbacks) are skipped —
    /// they must never poison a drift window. Environments without a
    /// train-time baseline are ignored.
    ///
    /// Purely observational: nothing here is read back by scoring.
    pub fn observe(&self, scores: &[f64], env_ids: &[u16], features: &[f32], n_features: usize) {
        debug_assert_eq!(scores.len(), env_ids.len());
        debug_assert_eq!(features.len(), env_ids.len() * n_features);
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for (r, (&score, &env)) in scores.iter().zip(env_ids).enumerate() {
            if !score.is_finite() || self.baseline.env(env).is_none() {
                continue;
            }
            let w = state.entry(env).or_insert_with(|| EnvWindow {
                scores: VecDeque::with_capacity(self.cfg.window.min(4096)),
                features: vec![VecDeque::new(); self.baseline.columns.len()],
                rows: 0,
                checks: 0,
                since_check: 0,
                signals: Vec::new(),
            });
            push_window(&mut w.scores, score, self.cfg.window);
            for (k, &col) in self.baseline.columns.iter().enumerate() {
                let v = f64::from(features[r * n_features + col as usize]);
                if v.is_finite() {
                    push_window(&mut w.features[k], v, self.cfg.window);
                }
            }
            w.rows += 1;
            w.since_check += 1;
            if w.since_check >= self.cfg.check_every && w.scores.len() >= self.cfg.min_samples {
                w.since_check = 0;
                self.check_env(env, w);
            }
        }
    }

    /// Recompute every signal's windowed PSI for one environment,
    /// publish gauges, and emit escalation events on band rises.
    fn check_env(&self, env: u16, w: &mut EnvWindow) {
        let baseline = self.baseline.env(env).expect("caller checked");
        let mut signals = Vec::with_capacity(1 + baseline.features.len());
        let window: Vec<f64> = w.scores.iter().copied().collect();
        if let Ok(report) = psi(&baseline.scores.points, &window, self.cfg.n_buckets) {
            signals.push(make_signal("score".to_string(), report));
        }
        for fb in &baseline.features {
            let Some(k) = self.baseline.columns.iter().position(|&c| c == fb.column) else {
                continue;
            };
            if w.features[k].len() < self.cfg.min_samples {
                continue;
            }
            let window: Vec<f64> = w.features[k].iter().copied().collect();
            if let Ok(report) = psi(&fb.sketch.points, &window, self.cfg.n_buckets) {
                signals.push(make_signal(format!("feature_{}", fb.column), report));
            }
        }
        // Publish gauges and escalate rising bands through the tracer.
        let env_label = env.to_string();
        for s in &signals {
            obs::registry()
                .gauge(
                    "drift_psi",
                    &[("env", env_label.as_str()), ("signal", s.signal.as_str())],
                )
                .set(s.psi);
            let previous = w
                .signals
                .iter()
                .find(|p| p.signal == s.signal)
                .map_or(DriftLevel::Stable, |p| p.level);
            if level_rank(s.level) > level_rank(previous) {
                let from = format!("{previous:?}");
                let to = format!("{:?}", s.level);
                let psi_val = format!("{:.4}", s.psi);
                lightmirm_core::event!(
                    "drift_escalation",
                    env = env_label,
                    signal = s.signal,
                    from = from,
                    to = to,
                    psi = psi_val,
                );
            }
        }
        w.checks += 1;
        w.signals = signals;
    }

    /// Snapshot the latest drift state across monitored environments.
    pub fn drift_report(&self) -> DriftReport {
        let state = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        DriftReport {
            envs: state
                .iter()
                .map(|(&env_id, w)| EnvDrift {
                    env_id,
                    rows: w.rows,
                    checks: w.checks,
                    signals: w.signals.clone(),
                })
                .collect(),
        }
    }

    /// Force a PSI check on every environment whose window holds at
    /// least `min_samples` rows, regardless of `check_every` — used at
    /// shutdown so short replays still produce a final report.
    pub fn check_now(&self) {
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let envs: Vec<u16> = state.keys().copied().collect();
        for env in envs {
            let w = state.get_mut(&env).expect("key just listed");
            if w.scores.len() >= self.cfg.min_samples {
                w.since_check = 0;
                self.check_env(env, w);
            }
        }
    }
}

fn make_signal(signal: String, report: PsiReport) -> SignalDrift {
    SignalDrift {
        signal,
        psi: report.psi,
        level: report.level(),
        report,
    }
}

fn push_window(w: &mut VecDeque<f64>, v: f64, cap: usize) {
    if w.len() == cap {
        w.pop_front();
    }
    w.push_back(v);
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightmirm_core::bundle::QuantileSketch;
    use lightmirm_core::bundle::{EnvBaseline, FeatureBaseline};

    fn uniformish(n: usize, offset: f64) -> Vec<f64> {
        (0..n).map(|i| (i as f64 / n as f64) + offset).collect()
    }

    /// A uniform sample streamed in mixed order (stride by a prime), so
    /// every contiguous sliding window is itself ~uniform — stationary,
    /// the way production traffic is between shifts.
    fn stream(n: usize, offset: f64) -> Vec<f64> {
        (0..n)
            .map(|i| ((i * 7919) % n) as f64 / n as f64 + offset)
            .collect()
    }

    /// Baseline for envs 0 and 1 over the same uniform score
    /// distribution, monitoring feature column 1.
    fn baseline() -> DriftBaseline {
        let scores = QuantileSketch::from_samples(&uniformish(2000, 0.0), 64).unwrap();
        let feat = QuantileSketch::from_samples(&uniformish(2000, 5.0), 64).unwrap();
        DriftBaseline {
            columns: vec![1],
            envs: (0..2)
                .map(|env_id| EnvBaseline {
                    env_id,
                    scores: scores.clone(),
                    features: vec![FeatureBaseline {
                        column: 1,
                        sketch: feat.clone(),
                    }],
                })
                .collect(),
        }
    }

    fn observe_rows(mon: &DriftMonitor, env: u16, scores: &[f64], feat_offset: f64) {
        let envs = vec![env; scores.len()];
        let features: Vec<f32> = scores
            .iter()
            .enumerate()
            .flat_map(|(i, _)| {
                let v = (i % 97) as f32 / 97.0 + feat_offset as f32 + 5.0;
                [0.0f32, v]
            })
            .collect();
        mon.observe(scores, &envs, &features, 2);
    }

    #[test]
    fn shifted_env_reports_major_stable_env_reports_stable() {
        let mon = DriftMonitor::new(
            baseline(),
            MonitorConfig {
                window: 1024,
                min_samples: 64,
                check_every: 128,
                n_buckets: 10,
            },
        );
        // Env 0 streams the training distribution; env 1 streams a
        // 2020-style shifted one (scores and the monitored feature).
        observe_rows(&mon, 0, &stream(600, 0.0), 0.0);
        observe_rows(&mon, 1, &stream(600, 0.5), 0.5);
        let report = mon.drift_report();
        let stable = report.env(0).expect("env 0 monitored");
        let shifted = report.env(1).expect("env 1 monitored");
        assert!(stable.checks >= 1 && shifted.checks >= 1);
        assert_eq!(stable.level(), DriftLevel::Stable, "{stable:?}");
        assert_eq!(shifted.level(), DriftLevel::Major, "{shifted:?}");
        // The per-signal breakdown carries both signals.
        let signals: Vec<&str> = shifted.signals.iter().map(|s| s.signal.as_str()).collect();
        assert_eq!(signals, ["score", "feature_1"]);
        assert!(shifted.signals.iter().all(|s| s.psi > 0.25), "{shifted:?}");
    }

    #[test]
    fn non_finite_scores_and_unbaselined_envs_are_skipped() {
        let mon = DriftMonitor::new(baseline(), MonitorConfig::default());
        let scores = [f64::NAN, f64::INFINITY, 0.5, 0.5];
        let envs = [0u16, 0, 9, 0];
        let features = [0.0f32; 8];
        mon.observe(&scores, &envs, &features, 2);
        let report = mon.drift_report();
        assert_eq!(report.env(0).map(|e| e.rows), Some(1));
        assert!(report.env(9).is_none(), "env 9 has no baseline");
    }

    #[test]
    fn check_now_forces_a_report_below_check_every() {
        let mon = DriftMonitor::new(
            baseline(),
            MonitorConfig {
                min_samples: 32,
                check_every: 100_000,
                ..MonitorConfig::default()
            },
        );
        observe_rows(&mon, 0, &stream(100, 0.0), 0.0);
        assert_eq!(mon.drift_report().env(0).unwrap().checks, 0);
        mon.check_now();
        let env = mon.drift_report();
        let env = env.env(0).unwrap();
        assert_eq!(env.checks, 1);
        assert_eq!(env.level(), DriftLevel::Stable);
    }

    #[test]
    fn windows_slide_so_recovery_is_visible() {
        let mon = DriftMonitor::new(
            baseline(),
            MonitorConfig {
                window: 256,
                min_samples: 64,
                check_every: 256,
                n_buckets: 10,
            },
        );
        // Shifted burst first, then the window refills with in-dist rows.
        observe_rows(&mon, 0, &stream(256, 0.5), 0.5);
        assert_eq!(
            mon.drift_report().env(0).unwrap().level(),
            DriftLevel::Major
        );
        observe_rows(&mon, 0, &stream(512, 0.0), 0.0);
        assert_eq!(
            mon.drift_report().env(0).unwrap().level(),
            DriftLevel::Stable,
            "window should slide past the burst"
        );
    }

    #[test]
    fn drift_report_serializes_to_json() {
        let mon = DriftMonitor::new(
            baseline(),
            MonitorConfig {
                min_samples: 32,
                check_every: 64,
                ..MonitorConfig::default()
            },
        );
        observe_rows(&mon, 0, &stream(128, 0.0), 0.0);
        let json = serde_json::to_string(&mon.drift_report()).expect("serializes");
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let envs = v["envs"].as_array().unwrap();
        assert_eq!(envs[0]["env_id"], 0u64);
        assert_eq!(envs[0]["signals"][0]["signal"], "score");
        assert!(envs[0]["signals"][0]["report"]["buckets"]
            .as_array()
            .is_some());
    }
}
