//! Sharded serving front end: N independent [`ScoringEngine`]s behind a
//! stable-hash [`ShardRouter`].
//!
//! Each shard is a full engine — its own lock-free intake ring, worker
//! pool, drift monitor, and hot-reload gate — so shards share no mutable
//! state and a flood (or a chaos-killed worker pool) on one shard cannot
//! stall its siblings. Routing is by an opaque `u16` key (tenant or
//! province id): the router hashes the key with splitmix64 and takes it
//! modulo the shard count, with an explicit pinning table overriding the
//! hash per key. The hash has **no runtime state**, so the same key maps
//! to the same shard across restarts; routes change only on explicit
//! resharding ([`ShardRouter::resharded`]) or pin edits.
//!
//! Correctness does not depend on routing: scoring is elementwise per
//! row, so any shard scores any row bit-identically
//! (`tests/shard_routing.rs` proves sharded == single-engine ==
//! offline). Routing is a locality/isolation policy, which is what lets
//! [`OverflowPolicy::Redirect`] bounce traffic off a full or draining
//! shard without changing a single score.

use std::collections::BTreeMap;
use std::sync::Arc;

use lightmirm_core::bundle::ModelBundle;
use lightmirm_core::timing::Histogram;

use crate::engine::{
    EngineConfig, EngineStats, PendingScores, ReloadError, ScoringEngine, SubmitError,
    SubmitOptions,
};

/// splitmix64 finalizer: the router's stateless key hash. Written out
/// here (rather than reusing an RNG type) because the spec is part of
/// the routing contract — DESIGN.md §5k documents these exact constants.
fn splitmix64(key: u64) -> u64 {
    let mut z = key.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Stable key → shard mapping: pinning table first, splitmix64 hash
/// modulo the shard count otherwise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRouter {
    shards: usize,
    pinned: BTreeMap<u16, usize>,
}

impl ShardRouter {
    /// A hash-only router over `shards` shards.
    ///
    /// # Panics
    ///
    /// Panics on zero shards — a configuration error.
    pub fn new(shards: usize) -> Self {
        assert!(shards >= 1, "router needs at least one shard");
        ShardRouter {
            shards,
            pinned: BTreeMap::new(),
        }
    }

    /// A router with an explicit pinning table overriding the hash.
    ///
    /// # Panics
    ///
    /// Panics on zero shards or a pin targeting a shard that does not
    /// exist.
    pub fn with_pinning(shards: usize, pinned: BTreeMap<u16, usize>) -> Self {
        let mut router = ShardRouter::new(shards);
        for (key, shard) in pinned {
            router.pin(key, shard);
        }
        router
    }

    /// Shards this router spreads over.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard serving `key`.
    pub fn route(&self, key: u16) -> usize {
        match self.pinned.get(&key) {
            Some(&shard) => shard,
            None => (splitmix64(u64::from(key)) % self.shards as u64) as usize,
        }
    }

    /// Pin `key` to `shard`, overriding the hash.
    ///
    /// # Panics
    ///
    /// Panics when `shard` does not exist.
    pub fn pin(&mut self, key: u16, shard: usize) {
        assert!(shard < self.shards, "pin target {shard} out of range");
        self.pinned.insert(key, shard);
    }

    /// Drop the pin for `key` (back to the hash route).
    pub fn unpin(&mut self, key: u16) {
        self.pinned.remove(&key);
    }

    /// The pinning table.
    pub fn pinned(&self) -> &BTreeMap<u16, usize> {
        &self.pinned
    }

    /// Explicit resharding: the ONLY operation that changes hash routes.
    /// Pins whose target still exists are kept; pins beyond the new
    /// shard count are dropped.
    pub fn resharded(&self, shards: usize) -> ShardRouter {
        assert!(shards >= 1, "router needs at least one shard");
        ShardRouter {
            shards,
            pinned: self
                .pinned
                .iter()
                .filter(|&(_, &s)| s < shards)
                .map(|(&k, &s)| (k, s))
                .collect(),
        }
    }
}

/// What a shard does with traffic its intake rejects (full, shed, or
/// draining).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverflowPolicy {
    /// Surface the primary shard's rejection to the caller (strict
    /// isolation: one tenant's flood stays that tenant's problem).
    #[default]
    Reject,
    /// Walk the remaining shards in ring order and enqueue on the first
    /// that accepts; only when every shard rejects does the caller see
    /// an error. Scores are routing-invariant, so a redirect never
    /// changes a result — it only moves the queueing.
    Redirect,
}

/// Configuration of the sharded front end.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Number of independent engine shards.
    pub shards: usize,
    /// Per-shard engine configuration. `chaos_scope` is overwritten per
    /// shard (`shard0`, `shard1`, …) so failpoints can target one shard.
    pub engine: EngineConfig,
    /// Overflow policy for rejected submissions.
    pub overflow: OverflowPolicy,
    /// Routing pins, key → shard.
    pub pinned: BTreeMap<u16, usize>,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            shards: 4,
            engine: EngineConfig::default(),
            overflow: OverflowPolicy::default(),
            pinned: BTreeMap::new(),
        }
    }
}

/// N independent [`ScoringEngine`] shards behind a [`ShardRouter`].
pub struct ShardedEngine {
    shards: Vec<ScoringEngine>,
    router: ShardRouter,
    overflow: OverflowPolicy,
}

impl ShardedEngine {
    /// Build `cfg.shards` engines, each serving a clone of `bundle`.
    ///
    /// # Panics
    ///
    /// Panics on invalid configuration (zero shards, out-of-range pins,
    /// or an invalid [`EngineConfig`]).
    pub fn new(bundle: &ModelBundle, cfg: &ShardConfig) -> Self {
        let router = ShardRouter::with_pinning(cfg.shards, cfg.pinned.clone());
        let shards = (0..cfg.shards)
            .map(|i| {
                let mut engine_cfg = cfg.engine.clone();
                engine_cfg.chaos_scope = Some(format!("shard{i}"));
                ScoringEngine::new(bundle.clone(), engine_cfg)
            })
            .collect();
        ShardedEngine {
            shards,
            router,
            overflow: cfg.overflow,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Direct handle to shard `i` (chaos tests and per-shard adaptation
    /// drive shards through this).
    pub fn shard(&self, i: usize) -> &ScoringEngine {
        &self.shards[i]
    }

    /// The router (read-only; routes are fixed for the engine's life —
    /// resharding means building a new front end).
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// Route `key` and submit, blocking on the target shard's
    /// backpressure. Returns the shard that accepted alongside the
    /// pending scores.
    ///
    /// Under [`OverflowPolicy::Redirect`], a rejecting primary
    /// (full/shed/draining) redirects non-blocking through the remaining
    /// shards in ring order; if every shard rejects, the call blocks on
    /// the first non-draining shard, and only errs when all shards are
    /// draining (or the request itself is invalid).
    ///
    /// # Errors
    ///
    /// See [`SubmitError`].
    pub fn submit(
        &self,
        key: u16,
        features: Vec<f32>,
        env_ids: Vec<u16>,
        opts: SubmitOptions,
    ) -> Result<(usize, PendingScores), SubmitError> {
        self.submit_routed(key, features, env_ids, opts, true)
    }

    /// Non-blocking [`ShardedEngine::submit`]: rejections surface
    /// immediately (after the redirect walk, under
    /// [`OverflowPolicy::Redirect`]).
    ///
    /// # Errors
    ///
    /// See [`SubmitError`].
    pub fn try_submit(
        &self,
        key: u16,
        features: Vec<f32>,
        env_ids: Vec<u16>,
        opts: SubmitOptions,
    ) -> Result<(usize, PendingScores), SubmitError> {
        self.submit_routed(key, features, env_ids, opts, false)
    }

    fn submit_routed(
        &self,
        key: u16,
        mut features: Vec<f32>,
        mut env_ids: Vec<u16>,
        opts: SubmitOptions,
        block: bool,
    ) -> Result<(usize, PendingScores), SubmitError> {
        let primary = self.router.route(key);
        let n = self.shards.len();
        // Primary attempt: non-blocking under Redirect (so an overflow
        // walks instead of waiting), blocking under Reject.
        let primary_block = block && self.overflow == OverflowPolicy::Reject;
        let primary_err =
            match self.shards[primary].submit_reclaim(features, env_ids, opts, primary_block) {
                Ok(pending) => return Ok((primary, pending)),
                Err((err, f, e)) => {
                    features = f;
                    env_ids = e;
                    err
                }
            };
        let redirectable = matches!(
            primary_err,
            SubmitError::QueueFull | SubmitError::Shed | SubmitError::ShuttingDown
        );
        if self.overflow == OverflowPolicy::Reject || !redirectable {
            return Err(primary_err);
        }
        // Redirect walk, ring order from the primary's successor.
        for step in 1..n {
            let shard = (primary + step) % n;
            match self.shards[shard].try_submit_reclaim(features, env_ids, opts) {
                Ok(pending) => return Ok((shard, pending)),
                Err((_, f, e)) => {
                    features = f;
                    env_ids = e;
                }
            }
        }
        if !block {
            return Err(primary_err);
        }
        // Everything rejected non-blocking: park on the first shard
        // still taking traffic (ring order keeps this deterministic).
        for step in 0..n {
            let shard = (primary + step) % n;
            if self.shards[shard].is_draining() {
                continue;
            }
            match self.shards[shard].submit_reclaim(features, env_ids, opts, true) {
                Ok(pending) => return Ok((shard, pending)),
                Err((err, f, e)) => {
                    features = f;
                    env_ids = e;
                    // A shard that started draining mid-wait: move on.
                    if err != SubmitError::ShuttingDown {
                        return Err(err);
                    }
                }
            }
        }
        Err(SubmitError::ShuttingDown)
    }

    /// Probe-validate `candidate` and swap it into every shard. Shards
    /// reload independently (each holds its own reload gate and rearms
    /// its own drift monitor); on a rejection the failing shard and
    /// every shard after it keep their incumbent, and the error names
    /// the shard.
    ///
    /// # Errors
    ///
    /// The first failing shard's index and [`ReloadError`].
    pub fn reload_all(
        &self,
        candidate: &ModelBundle,
        probe_features: &[f32],
        probe_env_ids: &[u16],
    ) -> Result<(), (usize, ReloadError)> {
        for (i, shard) in self.shards.iter().enumerate() {
            shard
                .reload(candidate.clone(), probe_features, probe_env_ids)
                .map_err(|e| (i, e))?;
        }
        Ok(())
    }

    /// Per-shard telemetry snapshots, indexed by shard.
    pub fn stats(&self) -> Vec<EngineStats> {
        self.shards.iter().map(ScoringEngine::stats).collect()
    }

    /// All shards' submit-entry → reply latency merged into one
    /// histogram (bucket-level merge, so p99/p99.9 of the aggregate are
    /// well-defined).
    pub fn merged_enqueue_to_reply(&self) -> Histogram {
        let mut merged = Histogram::new();
        for shard in &self.shards {
            merged.merge(&shard.enqueue_to_reply_histogram());
        }
        merged
    }

    /// Currently served bundles, indexed by shard.
    pub fn bundles(&self) -> Vec<Arc<ModelBundle>> {
        self.shards.iter().map(ScoringEngine::bundle).collect()
    }

    /// Stop intake on one shard while its siblings keep serving — the
    /// chaos suite's "kill a shard" lever, and the first half of an
    /// explicit per-shard drain.
    pub fn begin_shutdown_shard(&self, i: usize) {
        self.shards[i].begin_shutdown();
    }

    /// Stop intake everywhere, drain every shard, and return the final
    /// per-shard telemetry.
    pub fn shutdown(self) -> Vec<EngineStats> {
        // Cut intake on all shards first so no drain waits behind a
        // sibling still accepting.
        for shard in &self.shards {
            shard.begin_shutdown();
        }
        self.shards
            .into_iter()
            .map(ScoringEngine::shutdown)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_are_stable_and_cover_all_shards() {
        let router = ShardRouter::new(4);
        let again = ShardRouter::new(4); // a "restart": no shared state
        let mut seen = [false; 4];
        for key in 0u16..256 {
            let shard = router.route(key);
            assert!(shard < 4);
            assert_eq!(shard, again.route(key), "route must not depend on instance");
            seen[shard] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "256 keys should touch all 4 shards"
        );
    }

    #[test]
    fn pinning_overrides_the_hash_and_unpin_restores_it() {
        let mut router = ShardRouter::new(4);
        let key = 31u16;
        let hashed = router.route(key);
        let pinned_to = (hashed + 1) % 4;
        router.pin(key, pinned_to);
        assert_eq!(router.route(key), pinned_to);
        assert_eq!(
            router.route(key.wrapping_add(1)),
            ShardRouter::new(4).route(key.wrapping_add(1))
        );
        router.unpin(key);
        assert_eq!(router.route(key), hashed);
    }

    #[test]
    fn resharding_is_the_only_route_change() {
        let mut router = ShardRouter::new(4);
        router.pin(7, 3);
        router.pin(9, 1);
        let wider = router.resharded(8);
        assert_eq!(wider.pinned().len(), 2, "valid pins survive resharding");
        let narrower = router.resharded(2);
        assert_eq!(
            narrower.pinned().get(&9),
            Some(&1),
            "in-range pin survives shrinking"
        );
        assert_eq!(
            narrower.pinned().get(&7),
            None,
            "out-of-range pin is dropped"
        );
        // And the hash route for an unpinned key is a pure function of
        // (key, shard count).
        for key in 0u16..64 {
            assert_eq!(
                wider.route(key.wrapping_add(100)),
                ShardRouter::new(8).route(key.wrapping_add(100))
            );
        }
    }

    #[test]
    #[should_panic(expected = "pin target")]
    fn out_of_range_pin_is_rejected() {
        ShardRouter::new(2).pin(0, 2);
    }
}
