//! Per-tenant model registry under a memory budget.
//!
//! A sharded deployment serves many tenants (provinces, portfolios)
//! whose bundles cannot all stay resident. The registry keeps bundles
//! behind `Arc`s under a byte budget with least-recently-used eviction,
//! with one hard rule the chaos suite pins down: **a bundle marked
//! active — some shard's serving champion — is never evicted**, no
//! matter the pressure. Eviction only ever reclaims inactive bundles; if
//! the budget cannot be met without touching a champion, the insert
//! fails loudly instead.
//!
//! Budget accounting uses the bundle's serialized JSON size — the same
//! bytes a cold load would read — so the budget means the same thing
//! across process restarts and heterogeneous bundles.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex, MutexGuard};

use lightmirm_core::bundle::ModelBundle;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Registry tuning.
#[derive(Debug, Clone)]
pub struct RegistryConfig {
    /// Total serialized-bundle bytes the registry may hold resident.
    pub budget_bytes: usize,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        RegistryConfig {
            // Room for a handful of typical bundles; deployments size
            // this to their tenant fan-out.
            budget_bytes: 64 << 20,
        }
    }
}

/// Why the registry refused an operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// The bundle cannot fit even after evicting every inactive
    /// resident — the remainder is pinned by active champions.
    BudgetExceeded {
        /// Bytes the incoming bundle needs.
        need: usize,
        /// The configured budget.
        budget: usize,
        /// Bytes held by unevictable (active) bundles.
        pinned: usize,
    },
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::BudgetExceeded {
                need,
                budget,
                pinned,
            } => write!(
                f,
                "bundle of {need} bytes cannot fit: budget {budget}, {pinned} pinned by active champions"
            ),
        }
    }
}

impl std::error::Error for RegistryError {}

struct Entry {
    bundle: Arc<ModelBundle>,
    bytes: usize,
    /// Logical LRU clock tick of the last touch.
    last_used: u64,
}

struct State {
    entries: BTreeMap<u16, Entry>,
    /// Tenants whose bundle is some shard's serving champion.
    active: BTreeSet<u16>,
    clock: u64,
    bytes_used: usize,
    evictions: u64,
}

/// LRU model cache with active-champion pinning. All methods are
/// thread-safe (`&self`).
pub struct ModelRegistry {
    budget: usize,
    state: Mutex<State>,
}

impl ModelRegistry {
    /// An empty registry under `cfg.budget_bytes`.
    pub fn new(cfg: &RegistryConfig) -> Self {
        ModelRegistry {
            budget: cfg.budget_bytes,
            state: Mutex::new(State {
                entries: BTreeMap::new(),
                active: BTreeSet::new(),
                clock: 0,
                bytes_used: 0,
                evictions: 0,
            }),
        }
    }

    /// Insert (or replace) `tenant`'s bundle, evicting inactive LRU
    /// residents as needed. Replacing a tenant's own bundle keeps its
    /// active mark — that is exactly a promotion.
    ///
    /// # Errors
    ///
    /// [`RegistryError::BudgetExceeded`] when the budget cannot be met
    /// without evicting an active champion; the registry is unchanged.
    pub fn insert(
        &self,
        tenant: u16,
        bundle: ModelBundle,
    ) -> Result<Arc<ModelBundle>, RegistryError> {
        let need = bundle.to_json().len();
        let mut st = lock(&self.state);
        let freed_by_replace = st.entries.get(&tenant).map_or(0, |e| e.bytes);
        // Feasibility first, so an impossible insert leaves residents
        // untouched: only inactive bytes (plus the replaced entry) are
        // reclaimable.
        let pinned: usize = st
            .entries
            .iter()
            .filter(|(t, _)| st.active.contains(t) && **t != tenant)
            .map(|(_, e)| e.bytes)
            .sum();
        if pinned + need > self.budget {
            return Err(RegistryError::BudgetExceeded {
                need,
                budget: self.budget,
                pinned,
            });
        }
        if freed_by_replace > 0 {
            st.entries.remove(&tenant);
            st.bytes_used -= freed_by_replace;
        }
        // Evict inactive LRU entries until the bundle fits.
        while st.bytes_used + need > self.budget {
            let victim = st
                .entries
                .iter()
                .filter(|(t, _)| !st.active.contains(t))
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&t, _)| t)
                .expect("feasibility check guarantees an inactive victim");
            let evicted = st.entries.remove(&victim).expect("victim resident");
            st.bytes_used -= evicted.bytes;
            st.evictions += 1;
        }
        st.clock += 1;
        let arc = Arc::new(bundle);
        let tick = st.clock;
        st.entries.insert(
            tenant,
            Entry {
                bundle: Arc::clone(&arc),
                bytes: need,
                last_used: tick,
            },
        );
        st.bytes_used += need;
        Ok(arc)
    }

    /// Fetch `tenant`'s bundle, refreshing its LRU position.
    pub fn get(&self, tenant: u16) -> Option<Arc<ModelBundle>> {
        let mut st = lock(&self.state);
        st.clock += 1;
        let tick = st.clock;
        let entry = st.entries.get_mut(&tenant)?;
        entry.last_used = tick;
        Some(Arc::clone(&entry.bundle))
    }

    /// Pin `tenant`'s bundle as a serving champion: unevictable until
    /// [`ModelRegistry::clear_active`]. Idempotent; pinning a
    /// non-resident tenant is a no-op that takes effect on insert.
    pub fn mark_active(&self, tenant: u16) {
        lock(&self.state).active.insert(tenant);
    }

    /// Release `tenant`'s champion pin (the bundle becomes ordinary LRU
    /// fodder).
    pub fn clear_active(&self, tenant: u16) {
        lock(&self.state).active.remove(&tenant);
    }

    /// Resident tenants, ascending.
    pub fn resident(&self) -> Vec<u16> {
        lock(&self.state).entries.keys().copied().collect()
    }

    /// Whether `tenant`'s bundle is resident.
    pub fn contains(&self, tenant: u16) -> bool {
        lock(&self.state).entries.contains_key(&tenant)
    }

    /// Bytes currently resident.
    pub fn bytes_used(&self) -> usize {
        lock(&self.state).bytes_used
    }

    /// The configured budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget
    }

    /// Evictions performed so far.
    pub fn evictions(&self) -> u64 {
        lock(&self.state).evictions
    }
}
