//! Deterministic load generation for the sharded serving front end.
//!
//! A trace is synthesized from a seed into a framed byte buffer
//! ([`lightmirm_core::framing`]) — the same wire format a network front
//! end would read — then replayed against a [`ShardedEngine`] by a pool
//! of submitter threads. Everything about the trace (keys, row counts,
//! priorities, feature values) is a pure function of
//! `(pattern, seed, index)` via splitmix64 counter hashing: no RNG
//! state, no time dependence, so the same config always produces the
//! same bytes and — because scoring is elementwise and
//! routing-invariant — the same reply stream, regardless of submitter
//! count, worker count, or shard count.
//!
//! Four patterns cover the regimes the paper's deployment worries
//! about: `diurnal` (triangle ramp, the daily cycle), `flash-crowd`
//! (an 8× burst over one tenth of the trace), `mixed-priority`
//! (Low/Normal/High interleave exercising the shed watermark), and
//! `skewed` (80% of traffic on 20% of the key space — one hot
//! province).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use bytes::{Bytes, BytesMut};
use lightmirm_core::framing::{encode_frame, Frame, FrameError, FrameReader};

use crate::engine::{PendingScores, Priority, SubmitError, SubmitOptions};
use crate::shard::ShardedEngine;

/// splitmix64 finalizer — the trace's only source of pseudo-randomness.
fn mix(seed: u64, counter: u64) -> u64 {
    let mut z = seed
        .wrapping_add(counter.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The traffic shapes a trace can replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePattern {
    /// Triangle ramp between 1× and 4× the base row count — the daily
    /// load cycle compressed into one trace.
    Diurnal,
    /// Steady base load with an 8× burst over the middle tenth of the
    /// trace, concentrated on a small hot key set.
    FlashCrowd,
    /// Uniform load with Low/Normal/High priorities interleaved
    /// (roughly 25% / 60% / 15%), exercising the shed watermark.
    MixedPriority,
    /// 80% of events on the bottom 20% of the key space — one hot
    /// province hammering its shard while the rest idle.
    Skewed,
}

impl TracePattern {
    /// Every pattern, in canonical order.
    pub const ALL: [TracePattern; 4] = [
        TracePattern::Diurnal,
        TracePattern::FlashCrowd,
        TracePattern::MixedPriority,
        TracePattern::Skewed,
    ];

    /// The CLI/report name.
    pub fn name(self) -> &'static str {
        match self {
            TracePattern::Diurnal => "diurnal",
            TracePattern::FlashCrowd => "flash-crowd",
            TracePattern::MixedPriority => "mixed-priority",
            TracePattern::Skewed => "skewed",
        }
    }

    /// Parse a CLI/report name.
    pub fn parse(name: &str) -> Option<TracePattern> {
        TracePattern::ALL.into_iter().find(|p| p.name() == name)
    }
}

/// Trace synthesis parameters.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Traffic shape.
    pub pattern: TracePattern,
    /// Seed of the splitmix64 counter stream.
    pub seed: u64,
    /// Requests in the trace.
    pub events: usize,
    /// Routing key space: keys are drawn from `0..keys`.
    pub keys: u16,
    /// Environment-id space of the served bundle; each event's rows
    /// carry `key % envs`.
    pub envs: u16,
    /// Feature width of the served bundle.
    pub n_features: u32,
    /// Base rows per event; patterns scale around this.
    pub base_rows: usize,
}

impl TraceConfig {
    /// A small default sized for tests and smoke runs.
    pub fn quick(pattern: TracePattern, n_features: u32, envs: u16) -> Self {
        TraceConfig {
            pattern,
            seed: 7,
            events: 400,
            keys: 64,
            envs,
            n_features,
            base_rows: 16,
        }
    }
}

fn event_priority(pattern: TracePattern, h: u64) -> u8 {
    match pattern {
        TracePattern::MixedPriority => match h % 20 {
            0..=4 => 0,  // Low
            5..=16 => 1, // Normal
            _ => 2,      // High
        },
        _ => 1,
    }
}

fn event_rows(cfg: &TraceConfig, i: usize, h: u64) -> usize {
    let base = cfg.base_rows.max(1);
    match cfg.pattern {
        TracePattern::Diurnal => {
            // Integer triangle wave over the trace: factor 1..=4.
            let period = (cfg.events / 2).max(2);
            let phase = i % period;
            let half = period / 2;
            let tri = if phase < half { phase } else { period - phase };
            base * (1 + (3 * tri) / half.max(1))
        }
        TracePattern::FlashCrowd => {
            let crowd = i >= (cfg.events * 2) / 5 && i < cfg.events / 2;
            if crowd {
                base * 8
            } else {
                base
            }
        }
        TracePattern::MixedPriority => base + (h % base as u64) as usize,
        TracePattern::Skewed => base + (h % (base as u64 + 1)) as usize,
    }
}

fn event_key(cfg: &TraceConfig, i: usize, h: u64) -> u16 {
    let keys = u64::from(cfg.keys.max(1));
    match cfg.pattern {
        TracePattern::FlashCrowd => {
            let crowd = i >= (cfg.events * 2) / 5 && i < cfg.events / 2;
            if crowd {
                (h % (keys / 8).max(1)) as u16
            } else {
                (h % keys) as u16
            }
        }
        TracePattern::Skewed => {
            if h % 10 < 8 {
                ((h >> 8) % (keys / 5).max(1)) as u16
            } else {
                ((h >> 8) % keys) as u16
            }
        }
        _ => (h % keys) as u16,
    }
}

/// Synthesize the framed trace bytes for `cfg`. Pure function of the
/// config — byte-identical across runs, machines, and thread counts.
pub fn synthesize_trace(cfg: &TraceConfig) -> Bytes {
    let mut buf = BytesMut::new();
    let mut env_ids: Vec<u16> = Vec::new();
    let mut features: Vec<f32> = Vec::new();
    for i in 0..cfg.events {
        let h = mix(cfg.seed, i as u64);
        let rows = event_rows(cfg, i, h);
        let key = event_key(cfg, i, h);
        let priority = event_priority(cfg.pattern, h >> 32);
        let env = key % cfg.envs.max(1);
        env_ids.clear();
        env_ids.resize(rows, env);
        features.clear();
        for r in 0..rows * cfg.n_features as usize {
            let draw = mix(cfg.seed ^ 0xfeed_beef, ((i as u64) << 20) | r as u64);
            // Map to [-3, 3); f32-exact by construction.
            let unit = (draw >> 40) as f32 / (1u64 << 24) as f32;
            features.push(unit * 6.0 - 3.0);
        }
        encode_frame(
            &mut buf,
            priority,
            key,
            0,
            cfg.n_features,
            &env_ids,
            &features,
        );
    }
    buf.freeze()
}

/// What a replay produced.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// Events replayed.
    pub events: usize,
    /// Rows scored.
    pub rows: u64,
    /// Low-priority events shed at the watermark and retried as Normal
    /// (the replay guarantees every event a reply, so the score stream
    /// stays deterministic even under shedding).
    pub retried_sheds: u64,
    /// Wall-clock of the replay (submission start → last reply).
    pub elapsed: Duration,
    /// Per-event scores, in trace order — the reply stream. Scores are
    /// routing-invariant, so this is byte-identical across submitter,
    /// worker, and shard counts.
    pub scores: Vec<Vec<f64>>,
}

impl ReplayOutcome {
    /// Aggregate throughput in rows per second.
    pub fn rows_per_sec(&self) -> f64 {
        self.rows as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// FNV-1a digest of the reply stream's little-endian bytes — the
    /// determinism tests' one-number fingerprint.
    pub fn score_digest(&self) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for event in &self.scores {
            for s in event {
                for b in s.to_le_bytes() {
                    hash ^= u64::from(b);
                    hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
                }
            }
        }
        hash
    }
}

fn priority_of(byte: u8) -> Priority {
    match byte {
        0 => Priority::Low,
        2 => Priority::High,
        _ => Priority::Normal,
    }
}

/// Replay a framed trace against `engine` with `submitters` threads
/// striding the frames. Blocking submits; a shed Low-priority event is
/// retried once at Normal so every event is answered.
///
/// # Errors
///
/// A malformed trace surfaces its [`FrameError`].
///
/// # Panics
///
/// Panics when the engine rejects a well-formed submission for any
/// reason other than shedding, or drops a reply — both are engine
/// contract violations, not load conditions.
pub fn replay(
    engine: &ShardedEngine,
    trace: Bytes,
    submitters: usize,
) -> Result<ReplayOutcome, FrameError> {
    let frames: Vec<Frame> = FrameReader::new(trace).collect::<Result<_, _>>()?;
    let events = frames.len();
    let submitters = submitters.max(1);
    let retried_sheds = AtomicU64::new(0);
    let started = Instant::now();
    let mut per_thread: Vec<Vec<(usize, Vec<f64>)>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..submitters)
            .map(|t| {
                let frames = &frames;
                let retried_sheds = &retried_sheds;
                scope.spawn(move || {
                    let mut out: Vec<(usize, Vec<f64>)> = Vec::new();
                    let mut window: VecDeque<(usize, PendingScores)> = VecDeque::new();
                    for idx in (t..frames.len()).step_by(submitters) {
                        let frame = &frames[idx];
                        let pending = submit_frame(engine, frame, retried_sheds);
                        window.push_back((idx, pending));
                        if window.len() >= 64 {
                            let (i, p) = window.pop_front().expect("window non-empty");
                            out.push((i, p.wait().expect("loadgen reply")));
                        }
                    }
                    for (i, p) in window {
                        out.push((i, p.wait().expect("loadgen reply")));
                    }
                    out
                })
            })
            .collect();
        per_thread = handles
            .into_iter()
            .map(|h| h.join().expect("submitter thread"))
            .collect();
    });
    let elapsed = started.elapsed();
    let mut scores: Vec<Vec<f64>> = vec![Vec::new(); events];
    let mut rows = 0u64;
    for (idx, s) in per_thread.into_iter().flatten() {
        rows += s.len() as u64;
        scores[idx] = s;
    }
    Ok(ReplayOutcome {
        events,
        rows,
        retried_sheds: retried_sheds.load(Ordering::SeqCst),
        elapsed,
        scores,
    })
}

fn submit_frame(engine: &ShardedEngine, frame: &Frame, retried_sheds: &AtomicU64) -> PendingScores {
    // Typed buffers materialize only here, at the submit boundary; the
    // frame held zero-copy slices of the trace until now.
    let opts = SubmitOptions {
        deadline: None,
        priority: priority_of(frame.header.priority),
    };
    match engine.submit(
        frame.header.route_key,
        frame.features(),
        frame.env_ids(),
        opts,
    ) {
        Ok((_, pending)) => pending,
        Err(SubmitError::Shed) => {
            retried_sheds.fetch_add(1, Ordering::SeqCst);
            let retry = SubmitOptions {
                deadline: None,
                priority: Priority::Normal,
            };
            engine
                .submit(
                    frame.header.route_key,
                    frame.features(),
                    frame.env_ids(),
                    retry,
                )
                .map(|(_, p)| p)
                .expect("shed retry at Normal priority")
        }
        Err(e) => panic!("loadgen submit rejected: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_synthesis_is_a_pure_function_of_config() {
        for pattern in TracePattern::ALL {
            let cfg = TraceConfig::quick(pattern, 4, 5);
            let a = synthesize_trace(&cfg);
            let b = synthesize_trace(&cfg);
            assert_eq!(
                a.as_slice(),
                b.as_slice(),
                "{} not deterministic",
                pattern.name()
            );
            let mut other = cfg.clone();
            other.seed ^= 1;
            assert_ne!(
                synthesize_trace(&other).as_slice(),
                a.as_slice(),
                "{} ignores its seed",
                pattern.name()
            );
        }
    }

    #[test]
    fn flash_crowd_bursts_and_concentrates_keys() {
        let cfg = TraceConfig::quick(TracePattern::FlashCrowd, 2, 5);
        let frames: Vec<Frame> = FrameReader::new(synthesize_trace(&cfg))
            .collect::<Result<_, _>>()
            .expect("trace decodes");
        let crowd_start = (cfg.events * 2) / 5;
        let crowd_end = cfg.events / 2;
        for (i, f) in frames.iter().enumerate() {
            if i >= crowd_start && i < crowd_end {
                assert_eq!(
                    f.header.rows as usize,
                    cfg.base_rows * 8,
                    "burst rows at {i}"
                );
                assert!(f.header.route_key < cfg.keys / 8, "burst key spread at {i}");
            } else {
                assert_eq!(f.header.rows as usize, cfg.base_rows);
            }
        }
    }

    #[test]
    fn mixed_priority_traces_carry_all_three_classes() {
        let cfg = TraceConfig::quick(TracePattern::MixedPriority, 2, 5);
        let mut counts = [0usize; 3];
        for f in FrameReader::new(synthesize_trace(&cfg)) {
            counts[f.expect("frame").header.priority as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0), "priority mix {counts:?}");
        assert!(
            counts[1] > counts[0] && counts[1] > counts[2],
            "Normal dominates"
        );
    }

    #[test]
    fn pattern_names_round_trip() {
        for p in TracePattern::ALL {
            assert_eq!(TracePattern::parse(p.name()), Some(p));
        }
        assert_eq!(TracePattern::parse("nope"), None);
    }
}
