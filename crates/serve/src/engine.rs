//! The micro-batched scoring engine.
//!
//! Architecture: submitters reserve row capacity with one CAS on an
//! atomic row counter, then push requests into a bounded lock-free
//! [`MpmcRing`]; there is no mutex on the accept path. A small park
//! mutex with two condvars (`not_empty` wakes workers, `not_full` wakes
//! blocked submitters) exists **solely** for parked-thread wakeup — the
//! notifier brackets the mutex before notifying, pairing with the
//! waiter's re-check under the same mutex, so a wakeup can never be
//! missed while the hot path stays lock-free. Workers pull whole
//! requests — a request is never split across micro-batches — until the
//! batch reaches `max_batch` rows, the oldest queued request ages past
//! `max_wait`, or shutdown is draining. Reserved rows are released at
//! dispatch (not at ring pop), so backpressure and the shed watermark
//! see coalescing batches as still queued, exactly as the mutex-guarded
//! queue did. Each batch is scored in one
//! [`ModelBundle::score_batch_quarantined`] call and the scores are
//! fanned back out through per-request channels.
//!
//! Fault tolerance (the contract the chaos suite verifies): every
//! accepted request is answered **exactly once**, with either its scores
//! or a structured [`ScoreError`] — never a hang, never a silently wrong
//! score.
//!
//! - A panic while scoring is caught with `catch_unwind`; the batch's
//!   requests are requeued with bumped attempt counts and retried up to
//!   `max_attempts` times, after which each fails with
//!   [`ScoreError::Poisoned`].
//! - A worker thread that dies outside the scoring guard is respawned by
//!   its drop guard, so the pool never shrinks to zero.
//! - All internal locks recover from poisoning (`PoisonError::into_inner`)
//!   instead of cascading panics across threads.
//! - Per-request deadlines: a dispatched batch whose every request has
//!   already expired is dropped (each request answers
//!   [`ScoreError::DeadlineExceeded`]); a batch with any live request is
//!   scored whole.
//! - Load shedding: above the `shed_watermark` fraction of queue
//!   capacity, [`Priority::Low`] submissions are rejected with
//!   [`SubmitError::Shed`] before the queue hard-fills.
//! - Input quarantine: non-finite (or out-of-range) rows are split out
//!   per the configured [`QuarantinePolicy`]; clean rows in the same
//!   batch score bit-identically to an all-clean batch.
//! - Hot reload: [`ScoringEngine::reload`] validates a candidate bundle
//!   on a probe batch and swaps it in atomically; a failed validation
//!   leaves the incumbent serving with no in-flight disruption.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::ring::MpmcRing;

use lightmirm_core::bundle::{ModelBundle, QuarantineFallback, QuarantinePolicy};
use lightmirm_core::failpoint;
use lightmirm_core::obs::MetricsSnapshot;
use lightmirm_core::timing::Histogram;

/// Lock with poison recovery: a panicked holder degrades to "the state
/// is whatever the panicking thread left" rather than wedging every
/// other thread. All critical sections here keep the queue invariants
/// (`queued_rows` matches the queue contents) across any panic point.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Tuning knobs of the engine.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Rows per micro-batch: a worker dispatches as soon as this many rows
    /// are queued (a single larger request still dispatches whole).
    pub max_batch: usize,
    /// Deadline for partial batches: the oldest queued request never waits
    /// longer than this for more rows to coalesce with.
    pub max_wait: Duration,
    /// Queue bound in rows; the backpressure threshold.
    pub queue_capacity: usize,
    /// Scoring worker threads.
    pub workers: usize,
    /// Scoring attempts per request before it fails with
    /// [`ScoreError::Poisoned`] (a request is retried when a worker
    /// panics mid-batch).
    pub max_attempts: u32,
    /// Fraction of `queue_capacity` at which [`Priority::Low`]
    /// submissions are shed with [`SubmitError::Shed`]. `1.0` disables
    /// shedding below the hard bound.
    pub shed_watermark: f64,
    /// Input validation applied to every dispatched batch.
    pub quarantine: QuarantinePolicy,
    /// Online drift sentinel configuration. `Some` arms the sentinel
    /// when the served bundle carries a train-time
    /// [`DriftBaseline`](lightmirm_core::bundle::DriftBaseline); a
    /// baseline-less bundle serves unmonitored either way. Strictly
    /// observation-only — scores are bit-identical with the sentinel on
    /// or off (`tests/monitor.rs` proves it).
    pub monitor: Option<crate::monitor::MonitorConfig>,
    /// Failpoint scope label. `None` keeps the historical global site
    /// names (`serve::score_batch`, …); `Some("shard0")` suffixes every
    /// site (`serve::score_batch#shard0`) so chaos tests can target one
    /// shard of a [`crate::shard::ShardedEngine`] without touching its
    /// siblings. See [`scoped_failpoint_site`].
    pub chaos_scope: Option<String>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_batch: 256,
            max_wait: Duration::from_millis(2),
            queue_capacity: 4096,
            workers: 2,
            max_attempts: 3,
            shed_watermark: 1.0,
            quarantine: QuarantinePolicy::default(),
            monitor: None,
            chaos_scope: None,
        }
    }
}

/// The failpoint site name a scoped engine fires for `base`:
/// `base#scope`. Chaos tests targeting one shard build the site name
/// with this instead of hard-coding the separator.
pub fn scoped_failpoint_site(base: &str, scope: &str) -> String {
    format!("{base}#{scope}")
}

/// Precomputed failpoint site names, so the hot path never formats a
/// string. With no scope these are the historical global names.
struct FailSites {
    worker_loop: String,
    dispatch_delay: String,
    score_batch: String,
    reload_probe: String,
    reply: String,
}

impl FailSites {
    fn new(scope: Option<&str>) -> Self {
        let site = |base: &str| match scope {
            None => base.to_string(),
            Some(sc) => scoped_failpoint_site(base, sc),
        };
        FailSites {
            worker_loop: site("serve::worker_loop"),
            dispatch_delay: site("serve::dispatch_delay"),
            score_batch: site("serve::score_batch"),
            reload_probe: site("serve::reload_probe"),
            reply: site("serve::reply"),
        }
    }
}

/// Request priority for load shedding: under pressure (queue above the
/// shed watermark) `Low` traffic is rejected first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Priority {
    /// Sheddable (e.g. speculative or batch-refresh traffic).
    Low,
    /// Ordinary traffic; only rejected when the queue hard-fills.
    #[default]
    Normal,
    /// Latency-critical traffic; never shed below the hard bound.
    High,
}

/// Per-request submission options.
#[derive(Debug, Clone, Copy, Default)]
pub struct SubmitOptions {
    /// Answer-by budget measured from submission. A dispatched batch
    /// whose every request has expired is dropped and each request
    /// answers [`ScoreError::DeadlineExceeded`]; `None` never expires.
    pub deadline: Option<Duration>,
    /// Shedding class.
    pub priority: Priority,
}

/// Why a submission was not accepted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is at capacity (only from
    /// [`ScoringEngine::try_submit`]; blocking submit waits instead).
    QueueFull,
    /// The queue is above the shed watermark and the request is
    /// [`Priority::Low`].
    Shed,
    /// The engine is draining; no new requests are accepted.
    ShuttingDown,
    /// `features.len()` is not `env_ids.len() × n_features`.
    Malformed { features: usize, expected: usize },
    /// The request alone exceeds `queue_capacity` rows and could never be
    /// admitted.
    RequestTooLarge { rows: usize, capacity: usize },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "scoring queue is full"),
            SubmitError::Shed => write!(f, "low-priority request shed at the queue watermark"),
            SubmitError::ShuttingDown => write!(f, "engine is shutting down"),
            SubmitError::Malformed { features, expected } => {
                write!(f, "{features} feature values, expected {expected}")
            }
            SubmitError::RequestTooLarge { rows, capacity } => {
                write!(
                    f,
                    "request of {rows} rows exceeds queue capacity {capacity}"
                )
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// Structured outcome for an accepted-but-unanswerable request. Every
/// accepted request terminates in scores or exactly one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScoreError {
    /// The engine closed before the request was scored (its worker pool
    /// is gone and cannot be respawned).
    Closed,
    /// Scoring this request panicked on `attempts` consecutive tries —
    /// the request (or a batch neighbor) is presumed poisonous.
    Poisoned {
        /// Scoring attempts made before giving up.
        attempts: u32,
    },
    /// The request's deadline expired before a worker could score it.
    DeadlineExceeded,
    /// The request contains quarantined rows and the engine's policy is
    /// [`QuarantineFallback::Error`].
    Quarantined {
        /// Request-relative indices of the offending rows.
        rows: Vec<u32>,
    },
}

impl std::fmt::Display for ScoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScoreError::Closed => write!(f, "engine closed before the request was scored"),
            ScoreError::Poisoned { attempts } => {
                write!(f, "request poisoned a batch on {attempts} scoring attempts")
            }
            ScoreError::DeadlineExceeded => write!(f, "request deadline expired unscored"),
            ScoreError::Quarantined { rows } => {
                write!(f, "{} row(s) quarantined by input validation", rows.len())
            }
        }
    }
}

impl std::error::Error for ScoreError {}

/// A scored request, with any quarantine verdicts.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredResponse {
    /// One score per submitted row. Under
    /// [`QuarantineFallback::PriorScore`], quarantined rows hold the
    /// prior (their indices are in `quarantined`).
    pub scores: Vec<f64>,
    /// Request-relative indices of quarantined rows (empty when the
    /// request was clean).
    pub quarantined: Vec<u32>,
}

/// Handle to an accepted request's future scores.
#[derive(Debug)]
pub struct PendingScores {
    rx: mpsc::Receiver<Result<ScoredResponse, ScoreError>>,
    rows: usize,
}

impl PendingScores {
    /// Block until the request's scores arrive (request order preserved:
    /// scores are position-aligned with the submitted rows).
    ///
    /// # Errors
    ///
    /// A structured [`ScoreError`]; see its variants. Graceful shutdown
    /// drains every accepted request first.
    pub fn wait(self) -> Result<Vec<f64>, ScoreError> {
        self.wait_detailed().map(|r| r.scores)
    }

    /// Like [`PendingScores::wait`] but keeps the per-row quarantine
    /// verdicts.
    ///
    /// # Errors
    ///
    /// See [`ScoreError`].
    pub fn wait_detailed(self) -> Result<ScoredResponse, ScoreError> {
        match self.rx.recv() {
            Ok(outcome) => outcome,
            // Senders dropped without answering: the engine died.
            Err(_) => Err(ScoreError::Closed),
        }
    }

    /// Rows this request holds.
    pub fn rows(&self) -> usize {
        self.rows
    }
}

/// One queued scoring request.
struct Request {
    features: Vec<f32>,
    env_ids: Vec<u16>,
    /// When the submit call entered the engine — before any blocking
    /// wait for queue space, so `submitted_at → reply` covers the
    /// submit-side queuing that `enqueued_at → reply` misses.
    submitted_at: Instant,
    enqueued_at: Instant,
    /// Absolute expiry instant, from [`SubmitOptions::deadline`].
    expires_at: Option<Instant>,
    /// Scoring attempts so far (bumped when a batch panic requeues it).
    attempts: u32,
    responder: mpsc::Sender<Result<ScoredResponse, ScoreError>>,
}

impl Request {
    fn expired(&self, now: Instant) -> bool {
        self.expires_at.is_some_and(|t| t <= now)
    }

    fn answer(self, outcome: Result<ScoredResponse, ScoreError>) {
        // A dropped receiver is fine — the caller abandoned the request.
        let _ = self.responder.send(outcome);
    }
}

/// The engine's intake: a lock-free MPMC ring fronted by a small retry
/// stash, with row-count backpressure kept in one atomic.
///
/// Invariants (the basis of the drain and capacity proofs):
/// - `queued_rows` counts rows **admitted but not yet dispatched**. It
///   is reserved by CAS in `submit` *before* the push, and released at
///   dispatch time (after a micro-batch is formed) — not at ring pop —
///   so the shed watermark and capacity bound see coalescing rows as
///   still queued, and `queued_rows == 0` proves no request is in the
///   ring, the stash, a producer's hands post-reservation, or a forming
///   batch.
/// - The ring can never reject an admitted push: its slot count is at
///   least `queue_capacity`, every in-ring request holds ≥ 1 reserved
///   row, and panic-requeued requests bypass the ring via the stash.
/// - The stash is drained ahead of the ring, and overflow push-backs go
///   to its *front*, so FIFO order survives both panics and row-budget
///   boundaries.
struct WorkQueue {
    ring: MpmcRing<Request>,
    /// Panic-requeued requests and row-budget overflow push-backs; runs
    /// ahead of the ring.
    retry: Mutex<VecDeque<Request>>,
    /// Lock-free emptiness check for `retry` so the pop fast path skips
    /// the stash mutex entirely.
    retry_len: AtomicUsize,
    /// Total rows admitted and not yet dispatched (the backpressure
    /// quantity).
    queued_rows: AtomicUsize,
}

impl WorkQueue {
    fn new(capacity_rows: usize) -> Self {
        WorkQueue {
            ring: MpmcRing::with_capacity(capacity_rows),
            retry: Mutex::new(VecDeque::new()),
            retry_len: AtomicUsize::new(0),
            queued_rows: AtomicUsize::new(0),
        }
    }

    /// Enqueue an admitted request. Cannot fail: see the struct-level
    /// capacity invariant. (The stash fallback is a belt-and-suspenders
    /// path so an accepted request is never dropped even if the
    /// invariant were broken.)
    fn push(&self, req: Request) {
        if let Err(req) = self.ring.push(req) {
            debug_assert!(false, "ring full despite row reservation");
            let mut stash = lock(&self.retry);
            stash.push_back(req);
            self.retry_len.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// Dequeue the next request: stash first, then ring.
    fn pop(&self) -> Option<Request> {
        if self.retry_len.load(Ordering::SeqCst) > 0 {
            let mut stash = lock(&self.retry);
            if let Some(req) = stash.pop_front() {
                self.retry_len.fetch_sub(1, Ordering::SeqCst);
                return Some(req);
            }
        }
        self.ring.pop()
    }

    /// Return a popped-but-undispatched request to the queue head (its
    /// rows were never released, so only the stash needs updating).
    fn unpop(&self, req: Request) {
        let mut stash = lock(&self.retry);
        stash.push_front(req);
        self.retry_len.fetch_add(1, Ordering::SeqCst);
    }

    /// Whether a pop would find anything right now.
    fn has_work(&self) -> bool {
        self.retry_len.load(Ordering::SeqCst) > 0 || !self.ring.is_empty()
    }

    /// Pop whole requests into `batch` until it holds `max_batch` rows.
    /// Never splits a request; an oversized request starting a batch
    /// dispatches alone; a request that would overflow a non-empty batch
    /// goes back to the queue head untouched. Returns `true` when the
    /// row budget is met (caller dispatches immediately), `false` when
    /// the queue ran dry first.
    fn fill(&self, batch: &mut Vec<Request>, rows: &mut usize, max_batch: usize) -> bool {
        while *rows < max_batch {
            let Some(req) = self.pop() else {
                return false;
            };
            let next = req.env_ids.len();
            if !batch.is_empty() && *rows + next > max_batch {
                self.unpop(req);
                return true;
            }
            *rows += next;
            batch.push(req);
        }
        true
    }
}

/// Serving telemetry, updated by submitters and workers.
#[derive(Default)]
struct Metrics {
    /// Per-request latency, queue admission → scores sent, in
    /// nanoseconds. Starts at `enqueued_at`, so submit-side blocking on
    /// a full queue is excluded — see `enqueue_to_reply_ns` for the
    /// caller-observed figure.
    latency_ns: Histogram,
    /// Per-request latency, submit-call entry → scores sent, in
    /// nanoseconds. Includes any blocking wait for queue space, so under
    /// backpressure this is the latency a caller actually experiences.
    enqueue_to_reply_ns: Histogram,
    /// Pure scoring time per delivered batch (the
    /// `score_batch_quarantined` call alone), in nanoseconds.
    score_ns: Histogram,
    /// Queue depth in rows observed at each submit (after the push).
    queue_depth: Histogram,
    /// Rows per dispatched micro-batch.
    batch_rows: Histogram,
    requests: u64,
    rows_scored: u64,
    rejected_full: u64,
    shed_low_priority: u64,
    expired: u64,
    worker_panics: u64,
    retried_requests: u64,
    poisoned_requests: u64,
    quarantined_rows: u64,
    workers_respawned: u64,
    reloads: u64,
    reload_rejected: u64,
}

/// A point-in-time snapshot of the engine's histograms and counters.
#[derive(Debug, Clone, serde::Serialize)]
pub struct EngineStats {
    /// Requests answered or in flight.
    pub requests: u64,
    /// Rows scored so far.
    pub rows_scored: u64,
    /// `try_submit` calls bounced with [`SubmitError::QueueFull`].
    pub rejected_full: u64,
    /// Low-priority submissions shed at the watermark.
    pub shed_low_priority: u64,
    /// Requests answered [`ScoreError::DeadlineExceeded`] from dropped
    /// all-expired batches.
    pub expired: u64,
    /// Worker panics caught while scoring a batch.
    pub worker_panics: u64,
    /// Requests requeued for another scoring attempt after a panic.
    pub retried_requests: u64,
    /// Requests that exhausted `max_attempts` and answered
    /// [`ScoreError::Poisoned`].
    pub poisoned_requests: u64,
    /// Rows quarantined by input validation.
    pub quarantined_rows: u64,
    /// Dead worker threads replaced by their respawn guard.
    pub workers_respawned: u64,
    /// Successful hot reloads.
    pub reloads: u64,
    /// Hot reloads rejected by probe validation (incumbent kept).
    pub reload_rejected: u64,
    /// Median queue-admission → response latency, nanoseconds. Measured
    /// from `enqueued_at`, so blocking in `submit` on a full queue is
    /// **excluded** — compare with `enqueue_to_reply_p50_ns`.
    pub latency_p50_ns: u64,
    /// 99th-percentile request latency, nanoseconds.
    pub latency_p99_ns: u64,
    /// Mean request latency, nanoseconds.
    pub latency_mean_ns: f64,
    /// Worst observed request latency, nanoseconds.
    pub latency_max_ns: u64,
    /// Median submit-call → response latency, nanoseconds. Includes any
    /// blocking wait for queue space: the latency a caller experiences.
    pub enqueue_to_reply_p50_ns: u64,
    /// 99th-percentile submit-call → response latency, nanoseconds.
    pub enqueue_to_reply_p99_ns: u64,
    /// Mean submit-call → response latency, nanoseconds.
    pub enqueue_to_reply_mean_ns: f64,
    /// Worst submit-call → response latency, nanoseconds.
    pub enqueue_to_reply_max_ns: u64,
    /// Median pure scoring time per delivered batch, nanoseconds.
    pub score_p50_ns: u64,
    /// 99th-percentile pure scoring time per batch, nanoseconds.
    pub score_p99_ns: u64,
    /// Mean pure scoring time per batch, nanoseconds.
    pub score_mean_ns: f64,
    /// Median queue depth in rows seen at submit time.
    pub queue_depth_p50: u64,
    /// Worst queue depth in rows seen at submit time.
    pub queue_depth_max: u64,
    /// Mean rows per dispatched micro-batch.
    pub batch_rows_mean: f64,
    /// Largest dispatched micro-batch, rows.
    pub batch_rows_max: u64,
}

/// Why a hot reload was rejected (the incumbent bundle keeps serving).
#[derive(Debug)]
pub enum ReloadError {
    /// The candidate expects a different raw feature width than the
    /// incumbent; queued requests would be misrouted.
    FeatureMismatch { incumbent: usize, candidate: usize },
    /// The probe batch is malformed for the candidate.
    ProbeMalformed { features: usize, expected: usize },
    /// Scoring the probe batch panicked.
    ProbePanicked,
    /// The probe batch produced a non-finite score.
    ProbeNonFinite { row: usize },
}

impl std::fmt::Display for ReloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReloadError::FeatureMismatch {
                incumbent,
                candidate,
            } => write!(
                f,
                "candidate expects {candidate} features, incumbent serves {incumbent}"
            ),
            ReloadError::ProbeMalformed { features, expected } => {
                write!(
                    f,
                    "probe has {features} feature values, expected {expected}"
                )
            }
            ReloadError::ProbePanicked => write!(f, "candidate panicked on the probe batch"),
            ReloadError::ProbeNonFinite { row } => {
                write!(f, "candidate scored probe row {row} non-finite")
            }
        }
    }
}

impl std::error::Error for ReloadError {}

struct Shared {
    /// The served bundle, swappable by hot reload; workers clone the
    /// `Arc` once per batch so a swap never affects an in-flight batch.
    bundle: Mutex<Arc<ModelBundle>>,
    /// Raw feature width — fixed for the engine's lifetime (reload
    /// enforces it), so submit validation needs no bundle lock.
    n_features: usize,
    cfg: EngineConfig,
    queue: WorkQueue,
    /// Intake cutoff. SeqCst everywhere it meets `queued_rows`: the
    /// submit path re-checks it *after* winning a row reservation, and a
    /// draining worker reads it *before* reading `queued_rows`, so in
    /// the SeqCst total order either the submitter sees the cutoff and
    /// backs its reservation out, or every draining worker sees the
    /// reserved rows and keeps serving until they are dispatched.
    shutdown: AtomicBool,
    /// Parking anchor for both condvars. Never guards data: a notifier
    /// brackets it (lock, drop) before notifying, pairing with the
    /// waiter's re-check under the same mutex, which closes the
    /// check-then-park window without putting a mutex on the hot path.
    park: Mutex<()>,
    not_empty: Condvar,
    not_full: Condvar,
    /// Precomputed (possibly shard-scoped) failpoint site names.
    sites: FailSites,
    metrics: Mutex<Metrics>,
    /// Join handles of workers respawned after a thread death.
    respawned: Mutex<Vec<JoinHandle<()>>>,
    /// The drift sentinel, present when the config arms it and the
    /// served bundle carries a baseline; swapped alongside the bundle on
    /// hot reload. Strictly observation-only.
    monitor: Mutex<Option<Arc<crate::monitor::DriftMonitor>>>,
    /// Reload token: serializes whole [`ScoringEngine::reload`] calls
    /// (probe + monitor rearm + bundle swap) so a probe never validates
    /// a candidate while another caller swaps the served bundle
    /// mid-probe — adaptation promotions and manual `--reload-model`
    /// both funnel through it.
    reload_gate: Mutex<()>,
}

impl Shared {
    fn current_bundle(&self) -> Arc<ModelBundle> {
        Arc::clone(&lock(&self.bundle))
    }

    fn current_monitor(&self) -> Option<Arc<crate::monitor::DriftMonitor>> {
        lock(&self.monitor).clone()
    }

    fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Bracket the park mutex, then wake. Pairs with a waiter that
    /// re-checks its condition under the same mutex before waiting: the
    /// bracket cannot complete between the waiter's re-check and its
    /// wait, so the state change is either seen by the re-check or the
    /// notify lands after the wait began.
    fn wake(&self, cv: &Condvar) {
        drop(lock(&self.park));
        cv.notify_all();
    }
}

/// The sentinel for a bundle, when both config and baseline allow one.
fn build_monitor(
    cfg: &EngineConfig,
    bundle: &ModelBundle,
) -> Option<Arc<crate::monitor::DriftMonitor>> {
    let mon_cfg = cfg.monitor.clone()?;
    let baseline = bundle.baseline.clone()?;
    Some(Arc::new(crate::monitor::DriftMonitor::new(
        baseline, mon_cfg,
    )))
}

/// The embeddable scoring engine. `&self` methods are thread-safe; wrap
/// in an `Arc` (or scoped threads) to share between submitters.
pub struct ScoringEngine {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl ScoringEngine {
    /// Spin up the worker pool around a loaded bundle.
    ///
    /// # Panics
    ///
    /// Panics on a zero `max_batch`, `queue_capacity`, `workers`, or
    /// `max_attempts`, or a `shed_watermark` outside `(0, 1]` —
    /// configuration errors, not runtime conditions.
    pub fn new(bundle: ModelBundle, cfg: EngineConfig) -> Self {
        assert!(cfg.max_batch >= 1, "max_batch must be positive");
        assert!(cfg.queue_capacity >= 1, "queue_capacity must be positive");
        assert!(cfg.workers >= 1, "workers must be positive");
        assert!(cfg.max_attempts >= 1, "max_attempts must be positive");
        assert!(
            cfg.shed_watermark > 0.0 && cfg.shed_watermark <= 1.0,
            "shed_watermark must be in (0, 1]"
        );
        let n_features = bundle.n_features();
        let monitor = build_monitor(&cfg, &bundle);
        let sites = FailSites::new(cfg.chaos_scope.as_deref());
        let shared = Arc::new(Shared {
            bundle: Mutex::new(Arc::new(bundle)),
            n_features,
            queue: WorkQueue::new(cfg.queue_capacity),
            cfg: cfg.clone(),
            shutdown: AtomicBool::new(false),
            park: Mutex::new(()),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            sites,
            metrics: Mutex::new(Metrics::default()),
            respawned: Mutex::new(Vec::new()),
            monitor: Mutex::new(monitor),
            reload_gate: Mutex::new(()),
        });
        let workers = (0..cfg.workers)
            .map(|i| spawn_worker(Arc::clone(&shared), i))
            .collect();
        ScoringEngine { shared, workers }
    }

    /// The currently served bundle (a snapshot: hot reload may swap the
    /// engine's copy afterwards).
    pub fn bundle(&self) -> Arc<ModelBundle> {
        self.shared.current_bundle()
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.shared.cfg
    }

    /// Enqueue a scoring request, blocking while the queue is at
    /// capacity. Returns a [`PendingScores`] handle; scores come back
    /// position-aligned with the submitted rows.
    ///
    /// # Errors
    ///
    /// See [`SubmitError`] (everything but `QueueFull`, which blocks).
    pub fn submit(
        &self,
        features: Vec<f32>,
        env_ids: Vec<u16>,
    ) -> Result<PendingScores, SubmitError> {
        self.submit_inner(features, env_ids, SubmitOptions::default(), true)
    }

    /// [`ScoringEngine::submit`] with a deadline and priority.
    ///
    /// # Errors
    ///
    /// See [`SubmitError`].
    pub fn submit_with(
        &self,
        features: Vec<f32>,
        env_ids: Vec<u16>,
        opts: SubmitOptions,
    ) -> Result<PendingScores, SubmitError> {
        self.submit_inner(features, env_ids, opts, true)
    }

    /// Non-blocking [`ScoringEngine::submit`]: a full queue returns
    /// [`SubmitError::QueueFull`] immediately (load shedding).
    ///
    /// # Errors
    ///
    /// See [`SubmitError`].
    pub fn try_submit(
        &self,
        features: Vec<f32>,
        env_ids: Vec<u16>,
    ) -> Result<PendingScores, SubmitError> {
        self.submit_inner(features, env_ids, SubmitOptions::default(), false)
    }

    /// Non-blocking [`ScoringEngine::submit_with`].
    ///
    /// # Errors
    ///
    /// See [`SubmitError`].
    pub fn try_submit_with(
        &self,
        features: Vec<f32>,
        env_ids: Vec<u16>,
        opts: SubmitOptions,
    ) -> Result<PendingScores, SubmitError> {
        self.submit_inner(features, env_ids, opts, false)
    }

    /// Non-blocking submit that hands the buffers back on rejection, so
    /// a shard router can redirect an overflowing request to a sibling
    /// without cloning the feature rows.
    ///
    /// # Errors
    ///
    /// The [`SubmitError`] plus the untouched `features`/`env_ids`.
    pub fn try_submit_reclaim(
        &self,
        features: Vec<f32>,
        env_ids: Vec<u16>,
        opts: SubmitOptions,
    ) -> Result<PendingScores, (SubmitError, Vec<f32>, Vec<u16>)> {
        self.submit_reclaim(features, env_ids, opts, false)
    }

    /// Blocking [`ScoringEngine::try_submit_reclaim`].
    ///
    /// # Errors
    ///
    /// The [`SubmitError`] plus the untouched `features`/`env_ids`.
    pub fn submit_reclaim(
        &self,
        features: Vec<f32>,
        env_ids: Vec<u16>,
        opts: SubmitOptions,
        block: bool,
    ) -> Result<PendingScores, (SubmitError, Vec<f32>, Vec<u16>)> {
        self.submit_full(features, env_ids, opts, block)
    }

    /// Submit and wait: the one-call form for batch drivers.
    ///
    /// # Errors
    ///
    /// [`SubmitError`] on rejection; a drained engine never loses an
    /// accepted request, so the wait itself only fails on engine death.
    pub fn score_blocking(
        &self,
        features: Vec<f32>,
        env_ids: Vec<u16>,
    ) -> Result<Vec<f64>, SubmitError> {
        let pending = self.submit(features, env_ids)?;
        pending.wait().map_err(|_| SubmitError::ShuttingDown)
    }

    fn submit_inner(
        &self,
        features: Vec<f32>,
        env_ids: Vec<u16>,
        opts: SubmitOptions,
        block: bool,
    ) -> Result<PendingScores, SubmitError> {
        self.submit_full(features, env_ids, opts, block)
            .map_err(|(e, _, _)| e)
    }

    fn submit_full(
        &self,
        features: Vec<f32>,
        env_ids: Vec<u16>,
        opts: SubmitOptions,
        block: bool,
    ) -> Result<PendingScores, (SubmitError, Vec<f32>, Vec<u16>)> {
        let submitted_at = Instant::now();
        let expected = env_ids.len() * self.shared.n_features;
        if features.len() != expected {
            let err = SubmitError::Malformed {
                features: features.len(),
                expected,
            };
            return Err((err, features, env_ids));
        }
        let rows = env_ids.len();
        let (tx, rx) = mpsc::channel();
        if rows == 0 {
            // Nothing to score: answer immediately without queueing.
            let _ = tx.send(Ok(ScoredResponse {
                scores: Vec::new(),
                quarantined: Vec::new(),
            }));
            lock(&self.shared.metrics).requests += 1;
            return Ok(PendingScores { rx, rows });
        }
        if rows > self.shared.cfg.queue_capacity {
            let err = SubmitError::RequestTooLarge {
                rows,
                capacity: self.shared.cfg.queue_capacity,
            };
            return Err((err, features, env_ids));
        }
        let shared = &*self.shared;
        let capacity = shared.cfg.queue_capacity;
        // Low-priority traffic sheds at the watermark, before the hard
        // bound, so critical traffic keeps headroom under pressure.
        let shed_rows = ((capacity as f64) * shared.cfg.shed_watermark).ceil() as usize;
        let queued = &shared.queue.queued_rows;
        // Admission is one CAS on the row counter: the loaded value both
        // decides (shed/full/fits) and guards the reservation, so a
        // concurrent admit that would invalidate the decision makes the
        // CAS fail and the decision is retaken.
        loop {
            if shared.is_shutdown() {
                return Err((SubmitError::ShuttingDown, features, env_ids));
            }
            let cur = queued.load(Ordering::SeqCst);
            if opts.priority == Priority::Low && cur + rows > shed_rows {
                lock(&shared.metrics).shed_low_priority += 1;
                return Err((SubmitError::Shed, features, env_ids));
            }
            if cur + rows <= capacity {
                if queued
                    .compare_exchange(cur, cur + rows, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
                {
                    break;
                }
                continue;
            }
            if !block {
                lock(&shared.metrics).rejected_full += 1;
                return Err((SubmitError::QueueFull, features, env_ids));
            }
            // Park until a dispatch frees rows. Re-check under the park
            // mutex (see `Shared::wake` for the pairing argument).
            let guard = lock(&shared.park);
            if shared.is_shutdown() || queued.load(Ordering::SeqCst) + rows <= capacity {
                continue;
            }
            drop(
                shared
                    .not_full
                    .wait(guard)
                    .unwrap_or_else(std::sync::PoisonError::into_inner),
            );
        }
        // Shutdown re-check *after* the reservation (see the `shutdown`
        // field docs): if the cutoff raced in, back the rows out and
        // reject — workers may already have drained past us. If it did
        // not, every draining worker is guaranteed to see our rows and
        // wait for the push below.
        if shared.is_shutdown() {
            queued.fetch_sub(rows, Ordering::SeqCst);
            shared.wake(&shared.not_full);
            return Err((SubmitError::ShuttingDown, features, env_ids));
        }
        let now = Instant::now();
        shared.queue.push(Request {
            features,
            env_ids,
            submitted_at,
            enqueued_at: now,
            expires_at: opts.deadline.map(|d| now + d),
            attempts: 0,
            responder: tx,
        });
        let depth = queued.load(Ordering::Relaxed);
        shared.wake(&shared.not_empty);
        let mut m = lock(&shared.metrics);
        m.requests += 1;
        m.queue_depth.record(depth as u64);
        Ok(PendingScores { rx, rows })
    }

    /// Validate `candidate` on a probe batch, and atomically swap it in
    /// as the served bundle when it passes. On any failure the incumbent
    /// keeps serving — in-flight and queued requests are unaffected
    /// either way, because workers pin the bundle per batch.
    ///
    /// An empty probe validates dimensions only.
    ///
    /// Concurrent callers serialize through a single reload token held
    /// across probe *and* swap, so the bundle a probe validated is the
    /// bundle state the swap replaces — a second reload can never slip a
    /// different bundle in mid-probe.
    ///
    /// # Errors
    ///
    /// See [`ReloadError`]; on error the swap did not happen.
    pub fn reload(
        &self,
        candidate: ModelBundle,
        probe_features: &[f32],
        probe_env_ids: &[u16],
    ) -> Result<(), ReloadError> {
        let _token = lock(&self.shared.reload_gate);
        let reject = |e: ReloadError| {
            lock(&self.shared.metrics).reload_rejected += 1;
            Err(e)
        };
        if candidate.n_features() != self.shared.n_features {
            return reject(ReloadError::FeatureMismatch {
                incumbent: self.shared.n_features,
                candidate: candidate.n_features(),
            });
        }
        let expected = probe_env_ids.len() * candidate.n_features();
        if probe_features.len() != expected {
            return reject(ReloadError::ProbeMalformed {
                features: probe_features.len(),
                expected,
            });
        }
        if !probe_env_ids.is_empty() {
            let scores = match catch_unwind(AssertUnwindSafe(|| {
                // Failpoint: stall (Delay) to widen the probe window for
                // race tests, or panic to model probe divergence.
                failpoint::pause_or_panic(&self.shared.sites.reload_probe);
                candidate.score_batch(probe_features, probe_env_ids)
            })) {
                Ok(scores) => scores,
                Err(_) => return reject(ReloadError::ProbePanicked),
            };
            if let Some(row) = scores.iter().position(|s| !s.is_finite()) {
                return reject(ReloadError::ProbeNonFinite { row });
            }
        }
        // Rearm the sentinel against the candidate's baseline before the
        // swap, so no batch is ever checked against a stale baseline.
        *lock(&self.shared.monitor) = build_monitor(&self.shared.cfg, &candidate);
        *lock(&self.shared.bundle) = Arc::new(candidate);
        lock(&self.shared.metrics).reloads += 1;
        Ok(())
    }

    /// The drift sentinel, when armed (config has a
    /// [`crate::monitor::MonitorConfig`] and the served bundle carries a
    /// baseline).
    pub fn drift_monitor(&self) -> Option<Arc<crate::monitor::DriftMonitor>> {
        self.shared.current_monitor()
    }

    /// Snapshot the sentinel's latest per-environment drift state.
    /// `None` when the sentinel is not armed.
    pub fn drift_report(&self) -> Option<crate::monitor::DriftReport> {
        self.shared.current_monitor().map(|m| m.drift_report())
    }

    /// Snapshot the telemetry histograms and counters.
    pub fn stats(&self) -> EngineStats {
        let m = lock(&self.shared.metrics);
        EngineStats {
            requests: m.requests,
            rows_scored: m.rows_scored,
            rejected_full: m.rejected_full,
            shed_low_priority: m.shed_low_priority,
            expired: m.expired,
            worker_panics: m.worker_panics,
            retried_requests: m.retried_requests,
            poisoned_requests: m.poisoned_requests,
            quarantined_rows: m.quarantined_rows,
            workers_respawned: m.workers_respawned,
            reloads: m.reloads,
            reload_rejected: m.reload_rejected,
            latency_p50_ns: m.latency_ns.quantile(0.5),
            latency_p99_ns: m.latency_ns.quantile(0.99),
            latency_mean_ns: m.latency_ns.mean(),
            latency_max_ns: m.latency_ns.max(),
            enqueue_to_reply_p50_ns: m.enqueue_to_reply_ns.quantile(0.5),
            enqueue_to_reply_p99_ns: m.enqueue_to_reply_ns.quantile(0.99),
            enqueue_to_reply_mean_ns: m.enqueue_to_reply_ns.mean(),
            enqueue_to_reply_max_ns: m.enqueue_to_reply_ns.max(),
            score_p50_ns: m.score_ns.quantile(0.5),
            score_p99_ns: m.score_ns.quantile(0.99),
            score_mean_ns: m.score_ns.mean(),
            queue_depth_p50: m.queue_depth.quantile(0.5),
            queue_depth_max: m.queue_depth.max(),
            batch_rows_mean: m.batch_rows.mean(),
            batch_rows_max: m.batch_rows.max(),
        }
    }

    /// Snapshot the engine's telemetry as a [`MetricsSnapshot`] with
    /// `serve_*` metric names — the exportable superset of
    /// [`ScoringEngine::stats`]. Unlike the flattened percentiles there,
    /// histograms keep their full bucket shape, so snapshots can be
    /// merged across engines and rendered as Prometheus text or JSON via
    /// [`lightmirm_core::obs::export`]. Works with or without the `obs`
    /// feature: it reads the engine's own always-on telemetry, not the
    /// global registry.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        use lightmirm_core::obs::{HistogramSnapshot, MetricEntry, MetricKey, MetricValue};
        let counter = |name: &str, v: u64| MetricEntry {
            key: MetricKey::new(name, &[]),
            value: MetricValue::Counter(v),
        };
        let histogram = |name: &str, h: &Histogram| MetricEntry {
            key: MetricKey::new(name, &[]),
            value: MetricValue::Histogram(HistogramSnapshot::from_histogram(h)),
        };
        let m = lock(&self.shared.metrics);
        let mut metrics = vec![
            counter("serve_requests_total", m.requests),
            counter("serve_rows_scored_total", m.rows_scored),
            counter("serve_rejected_full_total", m.rejected_full),
            counter("serve_shed_total", m.shed_low_priority),
            counter("serve_deadline_expired_total", m.expired),
            counter("serve_worker_panics_total", m.worker_panics),
            counter("serve_retried_total", m.retried_requests),
            counter("serve_poisoned_total", m.poisoned_requests),
            counter("serve_quarantined_rows_total", m.quarantined_rows),
            counter("serve_workers_respawned_total", m.workers_respawned),
            counter("serve_reloads_total", m.reloads),
            counter("serve_reload_rejected_total", m.reload_rejected),
            histogram("serve_request_latency_ns", &m.latency_ns),
            histogram("serve_enqueue_to_reply_ns", &m.enqueue_to_reply_ns),
            histogram("serve_queue_depth_rows", &m.queue_depth),
            histogram("serve_batch_rows", &m.batch_rows),
            histogram("serve_score_ns", &m.score_ns),
        ];
        drop(m);
        metrics.sort_by(|a, b| a.key.cmp(&b.key));
        MetricsSnapshot { metrics }
    }

    /// Rows admitted and not yet dispatched — the live backpressure
    /// quantity. The shard router reads this for least-loaded redirects.
    pub fn queued_rows(&self) -> usize {
        self.shared.queue.queued_rows.load(Ordering::SeqCst)
    }

    /// Whether [`ScoringEngine::begin_shutdown`] has been called (the
    /// engine may still be draining accepted requests).
    pub fn is_draining(&self) -> bool {
        self.shared.is_shutdown()
    }

    /// Clone of the submit-call-entry → reply latency histogram. Unlike
    /// the flattened [`EngineStats`] percentiles this keeps the bucket
    /// shape, so a sharded front end can merge shards and read p99/p99.9
    /// from the aggregate.
    pub fn enqueue_to_reply_histogram(&self) -> Histogram {
        lock(&self.shared.metrics).enqueue_to_reply_ns.clone()
    }

    /// Clone of the queue-admission → reply latency histogram (blocking
    /// submit waits excluded); same merging rationale as
    /// [`ScoringEngine::enqueue_to_reply_histogram`].
    pub fn latency_histogram(&self) -> Histogram {
        lock(&self.shared.metrics).latency_ns.clone()
    }

    /// Stop intake without joining the workers: subsequent submissions
    /// fail with [`SubmitError::ShuttingDown`] while already-accepted
    /// requests keep draining. Callable from any thread holding a shared
    /// reference — the drain-from-shared-context half of
    /// [`ScoringEngine::shutdown`].
    pub fn begin_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        drop(lock(&self.shared.park));
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
    }

    /// Stop intake, score every queued request, join the workers, and
    /// return the final telemetry. Pending [`PendingScores`] handles all
    /// receive their scores (or structured errors) before this returns.
    pub fn shutdown(mut self) -> EngineStats {
        self.begin_shutdown_and_join();
        self.stats()
    }

    fn begin_shutdown_and_join(&mut self) {
        self.begin_shutdown();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // Workers respawned after thread deaths register here; keep
        // joining until the pool is fully quiescent (a joining worker can
        // itself die and respawn a successor).
        loop {
            let handles: Vec<JoinHandle<()>> = {
                let mut r = lock(&self.shared.respawned);
                r.drain(..).collect()
            };
            if handles.is_empty() {
                break;
            }
            for h in handles {
                let _ = h.join();
            }
        }
    }
}

impl Drop for ScoringEngine {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.begin_shutdown_and_join();
        }
    }
}

fn spawn_worker(shared: Arc<Shared>, id: usize) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("lightmirm-score-{id}"))
        .spawn(move || worker_entry(shared, id))
        .expect("spawn scoring worker")
}

/// Respawns a replacement worker if the thread dies by panic, so the
/// pool never shrinks. Registered handles are joined at shutdown.
struct RespawnGuard {
    shared: Arc<Shared>,
    id: usize,
}

impl Drop for RespawnGuard {
    fn drop(&mut self) {
        if !std::thread::panicking() {
            return; // normal worker exit (shutdown drain complete)
        }
        lock(&self.shared.metrics).workers_respawned += 1;
        let shared = Arc::clone(&self.shared);
        let id = self.id;
        if let Ok(h) = std::thread::Builder::new()
            .name(format!("lightmirm-score-{id}r"))
            .spawn(move || worker_entry(shared, id))
        {
            lock(&self.shared.respawned).push(h);
        }
    }
}

fn worker_entry(shared: Arc<Shared>, id: usize) {
    let _guard = RespawnGuard {
        shared: Arc::clone(&shared),
        id,
    };
    worker_loop(&shared);
}

/// Pull micro-batches until shutdown drains the queue.
fn worker_loop(shared: &Shared) {
    loop {
        // Chaos site: a panic here escapes the scoring guard and kills
        // the thread, exercising the respawn path.
        failpoint::pause_or_panic(&shared.sites.worker_loop);
        let Some(batch) = next_batch(shared) else {
            return;
        };
        process_batch(shared, batch);
    }
}

/// Block until a micro-batch is ready: `max_batch` rows popped, the
/// oldest popped request past the `max_wait` deadline, or shutdown
/// draining. Returns `None` when shut down with every admitted row
/// dispatched.
fn next_batch(shared: &Shared) -> Option<Vec<Request>> {
    let cfg = &shared.cfg;
    let mut batch: Vec<Request> = Vec::new();
    let mut rows = 0usize;
    loop {
        if shared.queue.fill(&mut batch, &mut rows, cfg.max_batch) {
            return Some(dispatch(shared, batch, rows));
        }
        // Queue ran dry before the row budget.
        match batch.first() {
            Some(first) => {
                let age = first.enqueued_at.elapsed();
                if shared.is_shutdown() || age >= cfg.max_wait {
                    return Some(dispatch(shared, batch, rows));
                }
                // Coalescing window still open: park for the remainder
                // (or a push wakeup), re-checking under the park mutex.
                let guard = lock(&shared.park);
                if shared.queue.has_work() || shared.is_shutdown() {
                    continue;
                }
                let (guard, _timeout) = shared
                    .not_empty
                    .wait_timeout(guard, cfg.max_wait - age)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                drop(guard);
            }
            None => {
                // Exit test: shutdown is read BEFORE queued_rows (see
                // the `shutdown` field docs) — `queued_rows == 0` after
                // the cutoff proves nothing is left anywhere.
                if shared.is_shutdown() {
                    if shared.queue.queued_rows.load(Ordering::SeqCst) == 0 {
                        return None;
                    }
                    // Rows are reserved but not poppable yet: a producer
                    // mid-push or a sibling's forming batch. Timed park
                    // so the drain re-tests promptly either way.
                    let guard = lock(&shared.park);
                    if shared.queue.has_work() {
                        continue;
                    }
                    let (guard, _timeout) = shared
                        .not_empty
                        .wait_timeout(guard, Duration::from_millis(1))
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    drop(guard);
                } else {
                    let guard = lock(&shared.park);
                    if shared.queue.has_work() || shared.is_shutdown() {
                        continue;
                    }
                    drop(
                        shared
                            .not_empty
                            .wait(guard)
                            .unwrap_or_else(std::sync::PoisonError::into_inner),
                    );
                }
            }
        }
    }
}

/// Release a formed batch's row reservation and wake parked threads.
/// This is the moment `queued_rows` drops — ring pops alone leave the
/// backpressure quantity untouched so shedding and capacity decisions
/// count coalescing rows.
fn dispatch(shared: &Shared, batch: Vec<Request>, rows: usize) -> Vec<Request> {
    debug_assert!(!batch.is_empty());
    shared.queue.queued_rows.fetch_sub(rows, Ordering::SeqCst);
    shared.wake(&shared.not_full);
    if shared.is_shutdown() {
        // A draining sibling may be parked on intake waiting for these
        // rows to resolve.
        shared.not_empty.notify_all();
    }
    batch
}

/// Handle one dispatched micro-batch: deadline triage, quarantining
/// score under a panic guard, and fan-out (or requeue on panic).
fn process_batch(shared: &Shared, batch: Vec<Request>) {
    let now = Instant::now();
    // Deadline triage: a batch with no live request is dropped whole. A
    // mixed batch scores whole — expired members still get their scores,
    // since the work is done anyway.
    if batch.iter().all(|r| r.expired(now)) {
        lock(&shared.metrics).expired += batch.len() as u64;
        for req in batch {
            req.answer(Err(ScoreError::DeadlineExceeded));
        }
        return;
    }
    // Chaos site: stall a dispatch without corrupting it.
    failpoint::pause_or_panic(&shared.sites.dispatch_delay);

    let total_rows: usize = batch.iter().map(|r| r.env_ids.len()).sum();
    let _span = lightmirm_core::span!("process_batch", rows = total_rows, requests = batch.len());
    let bundle = shared.current_bundle();
    let mut features = Vec::with_capacity(total_rows * bundle.n_features());
    let mut env_ids = Vec::with_capacity(total_rows);
    for req in &batch {
        features.extend_from_slice(&req.features);
        env_ids.extend_from_slice(&req.env_ids);
    }
    // The panic guard: a poisoned batch (bug, bad model arithmetic, or
    // injected fault) must not take the worker — or the engine — down.
    let score_start = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        failpoint::pause_or_panic(&shared.sites.score_batch);
        bundle.score_batch_quarantined(&features, &env_ids, &shared.cfg.quarantine)
    }));
    // Panicked batches don't record a score time: the batch was not
    // scored, and its requests will be timed on the retry that delivers.
    let score_elapsed = score_start.elapsed();
    match outcome {
        Ok(scored) => {
            // Feed the drift sentinel before fan-out. Observation-only:
            // the monitor reads the finished scores and inputs, never
            // writes anything scoring reads back.
            if let Some(monitor) = shared.current_monitor() {
                monitor.observe(&scored.scores, &env_ids, &features, bundle.n_features());
            }
            fan_out(shared, batch, scored, score_elapsed);
        }
        Err(_) => requeue_or_poison(shared, batch),
    }
}

/// Deliver a scored batch: record metrics, then slice per request and
/// map quarantine verdicts to the configured fallback.
fn fan_out(
    shared: &Shared,
    batch: Vec<Request>,
    scored: lightmirm_core::bundle::QuarantinedScores,
    score_elapsed: Duration,
) {
    let total_rows: usize = batch.iter().map(|r| r.env_ids.len()).sum();
    debug_assert_eq!(scored.scores.len(), total_rows);

    // Record metrics before fanning out, so a caller who has received its
    // scores always sees them reflected in a subsequent `stats()` call.
    {
        let mut m = lock(&shared.metrics);
        m.rows_scored += total_rows as u64;
        m.batch_rows.record(total_rows as u64);
        m.score_ns.record_duration(score_elapsed);
        m.quarantined_rows += scored.quarantined.len() as u64;
        for req in &batch {
            m.latency_ns.record_duration(req.enqueued_at.elapsed());
            m.enqueue_to_reply_ns
                .record_duration(req.submitted_at.elapsed());
        }
    }
    // Chaos site: stall (or kill) the reply path. Fired OUTSIDE every
    // engine lock — the shutdown-under-full-queue regression test pins
    // this down: a blocked producer must be able to observe shutdown
    // while replies are stalled here.
    failpoint::pause_or_panic(&shared.sites.reply);
    let mut bad_iter = scored.quarantined.iter().peekable();
    let mut offset = 0u32;
    for req in batch {
        let n = req.env_ids.len() as u32;
        let scores = scored.scores[offset as usize..(offset + n) as usize].to_vec();
        let mut quarantined = Vec::new();
        while let Some(q) = bad_iter.peek() {
            if q.row < offset + n {
                quarantined.push(q.row - offset);
                bad_iter.next();
            } else {
                break;
            }
        }
        offset += n;
        let errors = matches!(shared.cfg.quarantine.fallback, QuarantineFallback::Error);
        if errors && !quarantined.is_empty() {
            req.answer(Err(ScoreError::Quarantined { rows: quarantined }));
        } else {
            req.answer(Ok(ScoredResponse {
                scores,
                quarantined,
            }));
        }
    }
}

/// A batch panicked while scoring: requeue each request for another
/// attempt, or answer [`ScoreError::Poisoned`] once its attempts are
/// exhausted. The requeue may transiently overshoot `queue_capacity` by
/// one batch; backpressure reasserts as the queue drains.
fn requeue_or_poison(shared: &Shared, batch: Vec<Request>) {
    let mut poisoned = Vec::new();
    {
        let mut m = lock(&shared.metrics);
        m.worker_panics += 1;
        // `rev()` so stash push_front preserves the batch's original
        // order. Rows are re-reserved BEFORE each request becomes
        // poppable, so a draining worker that reads `queued_rows == 0`
        // cannot race past a retry.
        for mut req in batch.into_iter().rev() {
            req.attempts += 1;
            if req.attempts >= shared.cfg.max_attempts {
                m.poisoned_requests += 1;
                poisoned.push(req);
            } else {
                m.retried_requests += 1;
                shared
                    .queue
                    .queued_rows
                    .fetch_add(req.env_ids.len(), Ordering::SeqCst);
                shared.queue.unpop(req);
            }
        }
    }
    shared.wake(&shared.not_empty);
    for req in poisoned {
        let attempts = req.attempts;
        req.answer(Err(ScoreError::Poisoned { attempts }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(rows: usize) -> Request {
        let (tx, _rx) = mpsc::channel();
        Request {
            features: vec![0.0; rows],
            env_ids: vec![0; rows],
            submitted_at: Instant::now(),
            enqueued_at: Instant::now(),
            expires_at: None,
            attempts: 0,
            responder: tx,
        }
    }

    fn queue_of(reqs: Vec<Request>) -> WorkQueue {
        let rows: usize = reqs.iter().map(|r| r.env_ids.len()).sum();
        let wq = WorkQueue::new(1024);
        for r in reqs {
            wq.push(r);
        }
        wq.queued_rows.store(rows, Ordering::SeqCst);
        wq
    }

    fn fill(wq: &WorkQueue, max_batch: usize) -> Vec<Request> {
        let mut batch = Vec::new();
        let mut rows = 0;
        wq.fill(&mut batch, &mut rows, max_batch);
        batch
    }

    #[test]
    fn take_batch_respects_row_budget_but_never_splits_requests() {
        let wq = queue_of(vec![req(3), req(3), req(3)]);
        let batch = fill(&wq, 6);
        assert_eq!(batch.len(), 2); // 3 + 3 = 6 rows exactly
        let batch = fill(&wq, 6);
        assert_eq!(batch.len(), 1);
        assert!(!wq.has_work());
    }

    #[test]
    fn take_batch_dispatches_oversized_requests_alone() {
        let wq = queue_of(vec![req(100), req(1)]);
        let batch = fill(&wq, 8);
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].env_ids.len(), 100);
        assert!(wq.has_work(), "the 1-row request stays queued");
    }

    #[test]
    fn take_batch_stops_before_overflowing() {
        let wq = queue_of(vec![req(5), req(4)]);
        let batch = fill(&wq, 8);
        assert_eq!(batch.len(), 1); // 5 + 4 would exceed 8
                                    // The overflowing request went back to the queue head untouched
                                    // and leads the next batch (FIFO across the budget boundary).
        let batch = fill(&wq, 8);
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].env_ids.len(), 4);
    }

    #[test]
    fn retry_stash_runs_ahead_of_the_ring() {
        let wq = queue_of(vec![req(1), req(2)]);
        wq.unpop(req(7)); // a panic-requeued request
        let batch = fill(&wq, 100);
        let sizes: Vec<usize> = batch.iter().map(|r| r.env_ids.len()).collect();
        assert_eq!(sizes, vec![7, 1, 2], "stash first, then ring order");
    }

    #[test]
    fn scoped_failpoint_sites_are_suffixed() {
        let sites = FailSites::new(Some("shard3"));
        assert_eq!(sites.score_batch, "serve::score_batch#shard3");
        assert_eq!(
            sites.score_batch,
            scoped_failpoint_site("serve::score_batch", "shard3")
        );
        let global = FailSites::new(None);
        assert_eq!(global.score_batch, "serve::score_batch");
        assert_eq!(global.reply, "serve::reply");
    }

    #[test]
    fn expiry_is_absolute_and_none_never_expires() {
        let now = Instant::now();
        let live = req(1);
        assert!(!live.expired(now + Duration::from_secs(3600)));
        let mut dead = req(1);
        dead.expires_at = Some(now);
        assert!(dead.expired(now));
        assert!(!dead.expired(now - Duration::from_millis(1)));
    }

    #[test]
    fn mixed_batches_score_whole_only_all_expired_batches_drop() {
        let now = Instant::now();
        let mut expired = req(1);
        expired.expires_at = Some(now - Duration::from_millis(1));
        let live = req(1);
        let batch = [expired, live];
        assert!(!batch.iter().all(|r| r.expired(now)), "mixed batch is live");
        let mut both = req(1);
        both.expires_at = Some(now - Duration::from_millis(1));
        let mut other = req(2);
        other.expires_at = Some(now);
        let batch = [both, other];
        assert!(batch.iter().all(|r| r.expired(now)), "all expired drops");
    }
}
