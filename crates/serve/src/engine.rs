//! The micro-batched scoring engine.
//!
//! Architecture: submitters push requests into one bounded FIFO guarded
//! by a mutex with two condvars (`not_empty` wakes workers, `not_full`
//! wakes blocked submitters). Workers pull whole requests — a request is
//! never split across micro-batches — until the batch reaches
//! `max_batch` rows, the oldest queued request ages past `max_wait`, or
//! shutdown is draining. Each batch is scored in one
//! [`ModelBundle::score_batch`] call and the scores are fanned back out
//! through per-request channels.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use lightmirm_core::bundle::ModelBundle;
use lightmirm_core::timing::Histogram;

/// Tuning knobs of the engine.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Rows per micro-batch: a worker dispatches as soon as this many rows
    /// are queued (a single larger request still dispatches whole).
    pub max_batch: usize,
    /// Deadline for partial batches: the oldest queued request never waits
    /// longer than this for more rows to coalesce with.
    pub max_wait: Duration,
    /// Queue bound in rows; the backpressure threshold.
    pub queue_capacity: usize,
    /// Scoring worker threads.
    pub workers: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_batch: 256,
            max_wait: Duration::from_millis(2),
            queue_capacity: 4096,
            workers: 2,
        }
    }
}

/// Why a submission was not accepted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is at capacity (only from
    /// [`ScoringEngine::try_submit`]; blocking submit waits instead).
    QueueFull,
    /// The engine is draining; no new requests are accepted.
    ShuttingDown,
    /// `features.len()` is not `env_ids.len() × n_features`.
    Malformed { features: usize, expected: usize },
    /// The request alone exceeds `queue_capacity` rows and could never be
    /// admitted.
    RequestTooLarge { rows: usize, capacity: usize },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "scoring queue is full"),
            SubmitError::ShuttingDown => write!(f, "engine is shutting down"),
            SubmitError::Malformed { features, expected } => {
                write!(f, "{features} feature values, expected {expected}")
            }
            SubmitError::RequestTooLarge { rows, capacity } => {
                write!(
                    f,
                    "request of {rows} rows exceeds queue capacity {capacity}"
                )
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// The engine died (worker panic) before answering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScoreError;

impl std::fmt::Display for ScoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "engine closed before the request was scored")
    }
}

impl std::error::Error for ScoreError {}

/// Handle to an accepted request's future scores.
#[derive(Debug)]
pub struct PendingScores {
    rx: mpsc::Receiver<Vec<f64>>,
    rows: usize,
}

impl PendingScores {
    /// Block until the request's scores arrive (request order preserved:
    /// scores are position-aligned with the submitted rows).
    ///
    /// # Errors
    ///
    /// [`ScoreError`] only if the engine's workers died; graceful
    /// shutdown drains every accepted request first.
    pub fn wait(self) -> Result<Vec<f64>, ScoreError> {
        self.rx.recv().map_err(|_| ScoreError)
    }

    /// Rows this request holds.
    pub fn rows(&self) -> usize {
        self.rows
    }
}

/// One queued scoring request.
struct Request {
    features: Vec<f32>,
    env_ids: Vec<u16>,
    enqueued_at: Instant,
    responder: mpsc::Sender<Vec<f64>>,
}

/// Queue state behind the mutex.
struct QueueState {
    queue: VecDeque<Request>,
    /// Total rows across `queue` (the backpressure quantity).
    queued_rows: usize,
    shutdown: bool,
}

/// Serving telemetry, updated by submitters and workers.
#[derive(Default)]
struct Metrics {
    /// Per-request latency, submit → scores sent, in nanoseconds.
    latency_ns: Histogram,
    /// Queue depth in rows observed at each submit (after the push).
    queue_depth: Histogram,
    /// Rows per dispatched micro-batch.
    batch_rows: Histogram,
    requests: u64,
    rows_scored: u64,
    rejected_full: u64,
}

/// A point-in-time snapshot of the engine's histograms and counters.
#[derive(Debug, Clone, serde::Serialize)]
pub struct EngineStats {
    /// Requests answered or in flight.
    pub requests: u64,
    /// Rows scored so far.
    pub rows_scored: u64,
    /// `try_submit` calls bounced with [`SubmitError::QueueFull`].
    pub rejected_full: u64,
    /// Request latency percentiles (submit → response), nanoseconds.
    pub latency_p50_ns: u64,
    /// 99th-percentile request latency, nanoseconds.
    pub latency_p99_ns: u64,
    /// Mean request latency, nanoseconds.
    pub latency_mean_ns: f64,
    /// Worst observed request latency, nanoseconds.
    pub latency_max_ns: u64,
    /// Median queue depth in rows seen at submit time.
    pub queue_depth_p50: u64,
    /// Worst queue depth in rows seen at submit time.
    pub queue_depth_max: u64,
    /// Mean rows per dispatched micro-batch.
    pub batch_rows_mean: f64,
    /// Largest dispatched micro-batch, rows.
    pub batch_rows_max: u64,
}

struct Shared {
    bundle: ModelBundle,
    cfg: EngineConfig,
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    metrics: Mutex<Metrics>,
}

/// The embeddable scoring engine. `&self` methods are thread-safe; wrap
/// in an `Arc` (or scoped threads) to share between submitters.
pub struct ScoringEngine {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl ScoringEngine {
    /// Spin up the worker pool around a loaded bundle.
    ///
    /// # Panics
    ///
    /// Panics on a zero `max_batch`, `queue_capacity`, or `workers` —
    /// configuration errors, not runtime conditions.
    pub fn new(bundle: ModelBundle, cfg: EngineConfig) -> Self {
        assert!(cfg.max_batch >= 1, "max_batch must be positive");
        assert!(cfg.queue_capacity >= 1, "queue_capacity must be positive");
        assert!(cfg.workers >= 1, "workers must be positive");
        let shared = Arc::new(Shared {
            bundle,
            cfg: cfg.clone(),
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                queued_rows: 0,
                shutdown: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            metrics: Mutex::new(Metrics::default()),
        });
        let workers = (0..cfg.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("lightmirm-score-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn scoring worker")
            })
            .collect();
        ScoringEngine { shared, workers }
    }

    /// The served bundle.
    pub fn bundle(&self) -> &ModelBundle {
        &self.shared.bundle
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.shared.cfg
    }

    /// Enqueue a scoring request, blocking while the queue is at
    /// capacity. Returns a [`PendingScores`] handle; scores come back
    /// position-aligned with the submitted rows.
    ///
    /// # Errors
    ///
    /// See [`SubmitError`] (everything but `QueueFull`, which blocks).
    pub fn submit(
        &self,
        features: Vec<f32>,
        env_ids: Vec<u16>,
    ) -> Result<PendingScores, SubmitError> {
        self.submit_inner(features, env_ids, true)
    }

    /// Non-blocking [`ScoringEngine::submit`]: a full queue returns
    /// [`SubmitError::QueueFull`] immediately (load shedding).
    ///
    /// # Errors
    ///
    /// See [`SubmitError`].
    pub fn try_submit(
        &self,
        features: Vec<f32>,
        env_ids: Vec<u16>,
    ) -> Result<PendingScores, SubmitError> {
        self.submit_inner(features, env_ids, false)
    }

    /// Submit and wait: the one-call form for batch drivers.
    ///
    /// # Errors
    ///
    /// [`SubmitError`] on rejection; a drained engine never loses an
    /// accepted request, so the wait itself only fails on worker death.
    pub fn score_blocking(
        &self,
        features: Vec<f32>,
        env_ids: Vec<u16>,
    ) -> Result<Vec<f64>, SubmitError> {
        let pending = self.submit(features, env_ids)?;
        pending.wait().map_err(|_| SubmitError::ShuttingDown)
    }

    fn submit_inner(
        &self,
        features: Vec<f32>,
        env_ids: Vec<u16>,
        block: bool,
    ) -> Result<PendingScores, SubmitError> {
        let expected = env_ids.len() * self.shared.bundle.n_features();
        if features.len() != expected {
            return Err(SubmitError::Malformed {
                features: features.len(),
                expected,
            });
        }
        let rows = env_ids.len();
        let (tx, rx) = mpsc::channel();
        if rows == 0 {
            // Nothing to score: answer immediately without queueing.
            let _ = tx.send(Vec::new());
            self.shared.metrics.lock().expect("metrics lock").requests += 1;
            return Ok(PendingScores { rx, rows });
        }
        if rows > self.shared.cfg.queue_capacity {
            return Err(SubmitError::RequestTooLarge {
                rows,
                capacity: self.shared.cfg.queue_capacity,
            });
        }
        let mut st = self.shared.state.lock().expect("queue lock");
        loop {
            if st.shutdown {
                return Err(SubmitError::ShuttingDown);
            }
            if st.queued_rows + rows <= self.shared.cfg.queue_capacity {
                break;
            }
            if !block {
                drop(st);
                self.shared
                    .metrics
                    .lock()
                    .expect("metrics lock")
                    .rejected_full += 1;
                return Err(SubmitError::QueueFull);
            }
            st = self.shared.not_full.wait(st).expect("queue lock");
        }
        st.queue.push_back(Request {
            features,
            env_ids,
            enqueued_at: Instant::now(),
            responder: tx,
        });
        st.queued_rows += rows;
        let depth = st.queued_rows;
        drop(st);
        self.shared.not_empty.notify_all();
        let mut m = self.shared.metrics.lock().expect("metrics lock");
        m.requests += 1;
        m.queue_depth.record(depth as u64);
        Ok(PendingScores { rx, rows })
    }

    /// Snapshot the telemetry histograms and counters.
    pub fn stats(&self) -> EngineStats {
        let m = self.shared.metrics.lock().expect("metrics lock");
        EngineStats {
            requests: m.requests,
            rows_scored: m.rows_scored,
            rejected_full: m.rejected_full,
            latency_p50_ns: m.latency_ns.quantile(0.5),
            latency_p99_ns: m.latency_ns.quantile(0.99),
            latency_mean_ns: m.latency_ns.mean(),
            latency_max_ns: m.latency_ns.max(),
            queue_depth_p50: m.queue_depth.quantile(0.5),
            queue_depth_max: m.queue_depth.max(),
            batch_rows_mean: m.batch_rows.mean(),
            batch_rows_max: m.batch_rows.max(),
        }
    }

    /// Stop intake, score every queued request, join the workers, and
    /// return the final telemetry. Pending [`PendingScores`] handles all
    /// receive their scores before this returns.
    pub fn shutdown(mut self) -> EngineStats {
        self.begin_shutdown_and_join();
        self.stats()
    }

    fn begin_shutdown_and_join(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("queue lock");
            st.shutdown = true;
        }
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ScoringEngine {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.begin_shutdown_and_join();
        }
    }
}

/// Pull micro-batches until shutdown drains the queue.
fn worker_loop(shared: &Shared) {
    loop {
        let Some(batch) = next_batch(shared) else {
            return;
        };
        // Space just freed: wake blocked submitters.
        shared.not_full.notify_all();
        score_batch(shared, batch);
    }
}

/// Block until a micro-batch is ready: `max_batch` rows queued, the
/// oldest request past the `max_wait` deadline, or shutdown draining.
/// Returns `None` when shut down with an empty queue.
fn next_batch(shared: &Shared) -> Option<Vec<Request>> {
    let mut st = shared.state.lock().expect("queue lock");
    loop {
        if let Some(front) = st.queue.front() {
            let age = front.enqueued_at.elapsed();
            if st.shutdown || st.queued_rows >= shared.cfg.max_batch || age >= shared.cfg.max_wait {
                return Some(take_batch(&mut st, shared.cfg.max_batch));
            }
            let remaining = shared.cfg.max_wait - age;
            let (guard, _timeout) = shared
                .not_empty
                .wait_timeout(st, remaining)
                .expect("queue lock");
            st = guard;
        } else if st.shutdown {
            return None;
        } else {
            st = shared.not_empty.wait(st).expect("queue lock");
        }
    }
}

/// Pop whole requests until the batch holds `max_batch` rows (always at
/// least one request; an oversized request dispatches alone).
fn take_batch(st: &mut QueueState, max_batch: usize) -> Vec<Request> {
    let mut batch = Vec::new();
    let mut rows = 0;
    while let Some(front) = st.queue.front() {
        let next = front.env_ids.len();
        if !batch.is_empty() && rows + next > max_batch {
            break;
        }
        rows += next;
        st.queued_rows -= next;
        batch.push(st.queue.pop_front().expect("front exists"));
        if rows >= max_batch {
            break;
        }
    }
    batch
}

/// Score one micro-batch through the kernel batch path and fan the
/// results back out per request.
fn score_batch(shared: &Shared, batch: Vec<Request>) {
    let total_rows: usize = batch.iter().map(|r| r.env_ids.len()).sum();
    let mut features = Vec::with_capacity(total_rows * shared.bundle.n_features());
    let mut env_ids = Vec::with_capacity(total_rows);
    for req in &batch {
        features.extend_from_slice(&req.features);
        env_ids.extend_from_slice(&req.env_ids);
    }
    let scores = shared.bundle.score_batch(&features, &env_ids);
    debug_assert_eq!(scores.len(), total_rows);

    // Record metrics before fanning out, so a caller who has received its
    // scores always sees them reflected in a subsequent `stats()` call.
    {
        let mut m = shared.metrics.lock().expect("metrics lock");
        m.rows_scored += total_rows as u64;
        m.batch_rows.record(total_rows as u64);
        for req in &batch {
            m.latency_ns.record_duration(req.enqueued_at.elapsed());
        }
    }
    let mut offset = 0;
    for req in batch {
        let n = req.env_ids.len();
        let slice = scores[offset..offset + n].to_vec();
        offset += n;
        // A dropped receiver is fine — the caller abandoned the request.
        let _ = req.responder.send(slice);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(rows: usize) -> Request {
        let (tx, _rx) = mpsc::channel();
        Request {
            features: vec![0.0; rows],
            env_ids: vec![0; rows],
            enqueued_at: Instant::now(),
            responder: tx,
        }
    }

    fn state_of(reqs: Vec<Request>) -> QueueState {
        let queued_rows = reqs.iter().map(|r| r.env_ids.len()).sum();
        QueueState {
            queue: reqs.into(),
            queued_rows,
            shutdown: false,
        }
    }

    #[test]
    fn take_batch_respects_row_budget_but_never_splits_requests() {
        let mut st = state_of(vec![req(3), req(3), req(3)]);
        let batch = take_batch(&mut st, 6);
        assert_eq!(batch.len(), 2); // 3 + 3 = 6 rows exactly
        assert_eq!(st.queued_rows, 3);
        let batch = take_batch(&mut st, 6);
        assert_eq!(batch.len(), 1);
        assert_eq!(st.queued_rows, 0);
    }

    #[test]
    fn take_batch_dispatches_oversized_requests_alone() {
        let mut st = state_of(vec![req(100), req(1)]);
        let batch = take_batch(&mut st, 8);
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].env_ids.len(), 100);
        assert_eq!(st.queued_rows, 1);
    }

    #[test]
    fn take_batch_stops_before_overflowing() {
        let mut st = state_of(vec![req(5), req(4)]);
        let batch = take_batch(&mut st, 8);
        assert_eq!(batch.len(), 1); // 5 + 4 would exceed 8
        assert_eq!(st.queued_rows, 4);
    }
}
