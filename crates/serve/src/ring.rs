//! Bounded MPMC segmented ring: the serving engine's lock-free queue.
//!
//! A Vyukov-style array queue, split into fixed-size cache-line-padded
//! segments. Each slot carries a sequence number that encodes both its
//! lap and its state, so producers and consumers coordinate entirely
//! through one CAS on their respective position counters plus
//! acquire/release handoffs on the slot sequence — no mutex on the hot
//! path, no spinning on a contended lock, and FIFO order is the ring
//! order by construction.
//!
//! ## Memory-ordering argument
//!
//! - `push` claims a slot by CAS on `enqueue_pos` (relaxed: the CAS only
//!   orders the claim itself; the payload handoff is what needs
//!   ordering), writes the value, then publishes with
//!   `seq.store(pos + 1, Release)`. The Release store makes the written
//!   value visible to any consumer whose `seq.load(Acquire)` observes
//!   `pos + 1`.
//! - `pop` claims with CAS on `dequeue_pos`, reads the value *after* its
//!   `seq.load(Acquire)` observed the producer's Release store (so the
//!   read happens-after the write), then recycles the slot for the next
//!   lap with `seq.store(pos + capacity, Release)` — which is what a
//!   producer's Acquire load waits for before reusing the slot.
//! - Fullness/emptiness are detected from the slot sequence alone
//!   (`seq < pos` means the consumer/producer of the previous lap has
//!   not finished), so neither operation ever blocks: `push` on a full
//!   ring hands the value back, `pop` on an empty ring returns `None`.
//!   Parking belongs to the caller (the engine keeps a condvar solely
//!   for parked-worker wakeup).
//!
//! Capacity is rounded up to a power of two and allocated in
//! [`SEGMENT_SLOTS`]-slot segments so position→slot mapping is two
//! shifts and the slot array never straddles an allocation a resize
//! could move (there are no resizes — the ring is the backpressure
//! bound).

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Slots per segment. 64 keeps a segment's sequence words on distinct
/// lines from its neighbors while bounding per-segment allocation.
pub const SEGMENT_SLOTS: usize = 64;

/// Pad hot counters to their own cache line so producers bumping
/// `enqueue_pos` never false-share with consumers bumping `dequeue_pos`.
#[repr(align(64))]
struct CachePadded<T>(T);

struct Slot<T> {
    /// Lap-encoded state: `pos` = free for the producer claiming `pos`,
    /// `pos + 1` = holds the value for the consumer claiming `pos`.
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

struct Segment<T> {
    slots: Box<[Slot<T>]>,
}

/// Bounded lock-free multi-producer multi-consumer FIFO ring.
pub struct MpmcRing<T> {
    segments: Box<[Segment<T>]>,
    /// `capacity - 1`; capacity is a power of two.
    mask: usize,
    enqueue_pos: CachePadded<AtomicUsize>,
    dequeue_pos: CachePadded<AtomicUsize>,
}

// SAFETY: slots are handed off between threads through the seq
// acquire/release protocol above; a value is owned by exactly one
// claimant at a time, so sending T between threads is all that is
// required of T.
unsafe impl<T: Send> Send for MpmcRing<T> {}
unsafe impl<T: Send> Sync for MpmcRing<T> {}

impl<T> MpmcRing<T> {
    /// A ring holding at least `capacity` items (rounded up to a power
    /// of two, minimum one segment).
    ///
    /// # Panics
    ///
    /// Panics on zero capacity — a configuration error.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity >= 1, "ring capacity must be positive");
        let capacity = capacity.next_power_of_two().max(SEGMENT_SLOTS);
        let n_segments = capacity / SEGMENT_SLOTS;
        let segments = (0..n_segments)
            .map(|s| Segment {
                slots: (0..SEGMENT_SLOTS)
                    .map(|i| Slot {
                        seq: AtomicUsize::new(s * SEGMENT_SLOTS + i),
                        value: UnsafeCell::new(MaybeUninit::uninit()),
                    })
                    .collect(),
            })
            .collect();
        MpmcRing {
            segments,
            mask: capacity - 1,
            enqueue_pos: CachePadded(AtomicUsize::new(0)),
            dequeue_pos: CachePadded(AtomicUsize::new(0)),
        }
    }

    /// Slots the ring can hold (the rounded-up power of two).
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    fn slot(&self, pos: usize) -> &Slot<T> {
        let idx = pos & self.mask;
        &self.segments[idx / SEGMENT_SLOTS].slots[idx % SEGMENT_SLOTS]
    }

    /// Enqueue at the tail; a full ring hands the value back.
    ///
    /// # Errors
    ///
    /// `Err(value)` when the ring is full.
    pub fn push(&self, value: T) -> Result<(), T> {
        let mut pos = self.enqueue_pos.0.load(Ordering::Relaxed);
        loop {
            let slot = self.slot(pos);
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq as isize - pos as isize;
            if dif == 0 {
                match self.enqueue_pos.0.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS claimed `pos` exclusively and
                        // seq == pos says the previous lap's consumer is
                        // done with the slot.
                        unsafe { (*slot.value.get()).write(value) };
                        slot.seq.store(pos + 1, Ordering::Release);
                        return Ok(());
                    }
                    Err(p) => pos = p,
                }
            } else if dif < 0 {
                // Previous lap's value still in the slot: full.
                return Err(value);
            } else {
                pos = self.enqueue_pos.0.load(Ordering::Relaxed);
            }
        }
    }

    /// Dequeue from the head; `None` when empty.
    pub fn pop(&self) -> Option<T> {
        let mut pos = self.dequeue_pos.0.load(Ordering::Relaxed);
        loop {
            let slot = self.slot(pos);
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq as isize - (pos + 1) as isize;
            if dif == 0 {
                match self.dequeue_pos.0.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS claimed `pos` exclusively, and
                        // the Acquire load of seq == pos + 1 ordered this
                        // read after the producer's Release publish.
                        let value = unsafe { (*slot.value.get()).assume_init_read() };
                        slot.seq.store(pos + self.mask + 1, Ordering::Release);
                        return Some(value);
                    }
                    Err(p) => pos = p,
                }
            } else if dif < 0 {
                return None;
            } else {
                pos = self.dequeue_pos.0.load(Ordering::Relaxed);
            }
        }
    }

    /// Items currently queued — approximate under concurrency (the two
    /// counters are read independently), exact when quiescent.
    pub fn approx_len(&self) -> usize {
        let tail = self.enqueue_pos.0.load(Ordering::Relaxed);
        let head = self.dequeue_pos.0.load(Ordering::Relaxed);
        tail.saturating_sub(head)
    }

    /// Whether the ring looks empty right now (same caveat as
    /// [`MpmcRing::approx_len`]).
    pub fn is_empty(&self) -> bool {
        self.approx_len() == 0
    }
}

impl<T> Drop for MpmcRing<T> {
    fn drop(&mut self) {
        // Drain and drop any values still queued.
        while self.pop().is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn ring_is_fifo_and_bounds_capacity() {
        let ring = MpmcRing::with_capacity(3);
        assert_eq!(ring.capacity(), SEGMENT_SLOTS, "rounded up to a segment");
        for i in 0..ring.capacity() {
            ring.push(i).expect("fits");
        }
        assert_eq!(ring.push(999), Err(999), "full ring hands the value back");
        for i in 0..ring.capacity() {
            assert_eq!(ring.pop(), Some(i), "FIFO order");
        }
        assert_eq!(ring.pop(), None);
        // A second lap reuses the recycled slots.
        ring.push(42).expect("recycled slot accepts");
        assert_eq!(ring.pop(), Some(42));
    }

    #[test]
    fn ring_spans_multiple_segments() {
        let ring = MpmcRing::with_capacity(200);
        assert_eq!(ring.capacity(), 256);
        for i in 0..256 {
            ring.push(i).expect("fits");
        }
        assert!(ring.push(0).is_err());
        assert_eq!(ring.approx_len(), 256);
        for i in 0..256 {
            assert_eq!(ring.pop(), Some(i));
        }
        assert!(ring.is_empty());
    }

    #[test]
    fn ring_drop_releases_queued_values() {
        // Arc strong counts observe the drop of undrained items.
        let probe = Arc::new(());
        {
            let ring = MpmcRing::with_capacity(8);
            for _ in 0..5 {
                ring.push(Arc::clone(&probe)).expect("fits");
            }
            assert_eq!(Arc::strong_count(&probe), 6);
        }
        assert_eq!(Arc::strong_count(&probe), 1);
    }

    #[test]
    fn concurrent_push_pop_loses_and_duplicates_nothing() {
        const PRODUCERS: usize = 4;
        const PER_PRODUCER: usize = 2_000;
        let ring = Arc::new(MpmcRing::with_capacity(64));
        let popped = Arc::new(std::sync::Mutex::new(Vec::new()));
        let done = Arc::new(AtomicUsize::new(0));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let ring = Arc::clone(&ring);
                let popped = Arc::clone(&popped);
                let done = Arc::clone(&done);
                std::thread::spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        match ring.pop() {
                            Some(v) => local.push(v),
                            None if done.load(Ordering::SeqCst) == PRODUCERS && ring.is_empty() => {
                                break
                            }
                            None => std::thread::yield_now(),
                        }
                    }
                    popped.lock().unwrap().extend(local);
                })
            })
            .collect();
        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let ring = Arc::clone(&ring);
                let done = Arc::clone(&done);
                std::thread::spawn(move || {
                    for i in 0..PER_PRODUCER {
                        let mut v = p * PER_PRODUCER + i;
                        loop {
                            match ring.push(v) {
                                Ok(()) => break,
                                Err(back) => {
                                    v = back;
                                    std::thread::yield_now();
                                }
                            }
                        }
                    }
                    done.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in producers {
            h.join().expect("producer");
        }
        for h in consumers {
            h.join().expect("consumer");
        }
        let mut all = popped.lock().unwrap().clone();
        all.sort_unstable();
        let expect: Vec<usize> = (0..PRODUCERS * PER_PRODUCER).collect();
        assert_eq!(all, expect, "every pushed item popped exactly once");
    }

    #[test]
    fn single_consumer_sees_each_producer_in_order() {
        // MPMC ring with one consumer: pops follow ring order, so each
        // producer's items arrive in its own push order.
        const PRODUCERS: usize = 3;
        const PER_PRODUCER: usize = 1_000;
        let ring = Arc::new(MpmcRing::with_capacity(64));
        let done = Arc::new(AtomicUsize::new(0));
        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let ring = Arc::clone(&ring);
                let done = Arc::clone(&done);
                std::thread::spawn(move || {
                    for i in 0..PER_PRODUCER {
                        let mut v = (p, i);
                        while let Err(back) = ring.push(v) {
                            v = back;
                            std::thread::yield_now();
                        }
                    }
                    done.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        let mut last = [0usize; PRODUCERS];
        let mut seen = 0usize;
        while seen < PRODUCERS * PER_PRODUCER {
            match ring.pop() {
                Some((p, i)) => {
                    if i > 0 {
                        assert!(
                            i > last[p],
                            "producer {p} out of order: {i} after {}",
                            last[p]
                        );
                    }
                    last[p] = i;
                    seen += 1;
                }
                None => std::thread::yield_now(),
            }
        }
        for h in producers {
            h.join().expect("producer");
        }
        assert_eq!(done.load(Ordering::SeqCst), PRODUCERS);
    }
}
