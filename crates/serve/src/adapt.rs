//! Online adaptation: turn [`DriftLevel::Major`] into recovery.
//!
//! The drift sentinel (PR 5) *notices* a province shifting out of
//! distribution; this module *responds*. Three pieces close the loop:
//!
//! - [`LabelFeed`] — a bounded per-province streaming buffer of recent
//!   labeled rows with a global watermark sequence and byte-budgeted
//!   eviction, the supervised signal an adaptation step trains on.
//! - a **warm-started LightMIRM retrain** of the LR head: the GBDT leaf
//!   transform stays frozen (the champion's extractor re-encodes the
//!   buffered rows), and [`LightMirmTrainer::fit_warm`] starts from the
//!   champion's weights so a few epochs over a small buffer suffice —
//!   *Continual Invariant Risk Minimization*'s warm-start insight.
//! - [`PromotionController`] — a champion/challenger state machine,
//!   `Observe → Retrain → Probe → Canary → Promote | Rollback`, driven
//!   one deterministic [`PromotionController::step`] at a time by the
//!   replay loop. Promotion is gated: the candidate must pass the
//!   engine's probe-batch reload validation *and* a golden-metric canary
//!   guard (challenger AUC on held-out labeled rows must beat the
//!   champion's by a configurable margin). Any failure rolls the serving
//!   bundle back to the pristine champion — bit-identical scores, since
//!   the rollback reloads an exact clone — and failed retrains retry
//!   with exponential backoff before a cooldown stops drift flapping
//!   from thrashing the model.
//!
//! Every transition lands in the controller's event log (exportable as
//! JSONL for the CI artifact), is mirrored to `core::obs` counters and
//! `adapt_transition` trace events, and the failure modes are injectable
//! through `core::failpoint` (`adapt::retrain` panics the retrain,
//! `adapt::bad_retrain` corrupts the candidate head so only the canary
//! guard can catch it, `bundle::*` sites fail persistence, and
//! `serve::reload_probe` widens or breaks the probe window).
//!
//! A promoted bundle carries a [`BundleLineage`] record — parent payload
//! CRC-32, trigger environment and PSI, labeled rows consumed, and the
//! adaptation generation — persisted through the CRC envelope via
//! [`ModelBundle::save_to_path`] when a save path is configured.
//! Promotion *requires* durable persistence: a failed save rolls back.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use lightmirm_core::bundle::{BundleLineage, DriftBaseline, ModelBundle};
use lightmirm_core::env::EnvDataset;
use lightmirm_core::failpoint;
use lightmirm_core::obs;
use lightmirm_core::sparse::MultiHotMatrix;
use lightmirm_core::trainers::{LightMirmTrainer, TrainConfig, TrainedModel};
use lightmirm_metrics::drift::DriftLevel;
use lightmirm_metrics::rank::auc;
use serde::Serialize;

use crate::engine::ScoringEngine;

/// Bounds of the [`LabelFeed`].
#[derive(Debug, Clone)]
pub struct FeedConfig {
    /// Per-environment row cap; the oldest row of the same environment
    /// is evicted when a push would exceed it.
    pub max_rows_per_env: usize,
    /// Global byte budget across all environments; when exceeded, the
    /// oldest row of the largest environment is evicted until the
    /// buffer fits again.
    pub max_bytes: usize,
}

impl Default for FeedConfig {
    fn default() -> Self {
        FeedConfig {
            max_rows_per_env: 4096,
            max_bytes: 8 << 20,
        }
    }
}

/// One buffered labeled observation.
struct LabeledRow {
    /// Global watermark sequence number (monotone across environments).
    seq: u64,
    features: Vec<f32>,
    label: u8,
}

fn row_bytes(n_features: usize) -> usize {
    n_features * std::mem::size_of::<f32>() + std::mem::size_of::<u64>() + std::mem::size_of::<u8>()
}

struct FeedState {
    next_seq: u64,
    total_bytes: usize,
    evicted_rows: u64,
    envs: BTreeMap<u16, VecDeque<LabeledRow>>,
}

/// Flattened snapshot of the feed's current contents, ordered by
/// environment id then arrival sequence — a deterministic training view.
#[derive(Debug, Clone)]
pub struct FeedSnapshot {
    /// Row-major features, `n_features` per row.
    pub features: Vec<f32>,
    /// One label per row.
    pub labels: Vec<u8>,
    /// One environment (province) id per row.
    pub env_ids: Vec<u16>,
    /// Feature width.
    pub n_features: usize,
}

impl FeedSnapshot {
    /// Number of rows in the snapshot.
    pub fn n_rows(&self) -> usize {
        self.env_ids.len()
    }
}

/// Bounded per-province buffer of recent labeled rows.
///
/// Thread-safe: the serving loop pushes labels as they arrive while the
/// controller snapshots for retraining. Rows carry a global monotone
/// watermark sequence; eviction (per-env row cap, then global byte
/// budget) always drops the *oldest* rows first, so the buffer converges
/// to the freshest labeled window of each province.
pub struct LabelFeed {
    n_features: usize,
    cfg: FeedConfig,
    state: Mutex<FeedState>,
}

impl LabelFeed {
    /// An empty feed for rows of `n_features` features.
    ///
    /// # Panics
    ///
    /// Panics on a zero `n_features` or zero capacity bounds —
    /// configuration errors, not runtime conditions.
    pub fn new(n_features: usize, cfg: FeedConfig) -> Self {
        assert!(n_features >= 1, "n_features must be positive");
        assert!(
            cfg.max_rows_per_env >= 1,
            "max_rows_per_env must be positive"
        );
        assert!(
            cfg.max_bytes >= row_bytes(n_features),
            "max_bytes must fit at least one row"
        );
        LabelFeed {
            n_features,
            cfg,
            state: Mutex::new(FeedState {
                next_seq: 0,
                total_bytes: 0,
                evicted_rows: 0,
                envs: BTreeMap::new(),
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FeedState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Buffer one labeled row and return its watermark sequence number.
    /// Rows of the wrong width or with non-finite features are rejected
    /// (`None`) — a poisoned feature must never reach a retrain.
    pub fn push(&self, env: u16, features: &[f32], label: u8) -> Option<u64> {
        if features.len() != self.n_features || !features.iter().all(|v| v.is_finite()) {
            return None;
        }
        let bytes = row_bytes(self.n_features);
        let mut st = self.lock();
        let seq = st.next_seq;
        st.next_seq += 1;
        let buf = st.envs.entry(env).or_default();
        buf.push_back(LabeledRow {
            seq,
            features: features.to_vec(),
            label,
        });
        st.total_bytes += bytes;
        // Per-environment row cap: oldest of the same province goes.
        if st.envs[&env].len() > self.cfg.max_rows_per_env {
            st.envs.get_mut(&env).expect("just inserted").pop_front();
            st.total_bytes -= bytes;
            st.evicted_rows += 1;
        }
        // Global byte budget: shrink the largest environment first (ties
        // break toward the lowest env id), oldest row of it each round.
        while st.total_bytes > self.cfg.max_bytes {
            let Some((&victim, _)) = st
                .envs
                .iter()
                .filter(|(_, b)| !b.is_empty())
                .max_by_key(|(&e, b)| (b.len(), std::cmp::Reverse(e)))
            else {
                break;
            };
            let remaining: usize = st.envs.values().map(VecDeque::len).sum();
            if remaining <= 1 {
                break; // never evict the sole remaining row
            }
            st.envs
                .get_mut(&victim)
                .expect("key just listed")
                .pop_front();
            st.total_bytes -= bytes;
            st.evicted_rows += 1;
        }
        Some(seq)
    }

    /// Buffered rows for one environment.
    pub fn rows(&self, env: u16) -> usize {
        self.lock().envs.get(&env).map_or(0, VecDeque::len)
    }

    /// Total buffered rows across environments.
    pub fn total_rows(&self) -> usize {
        self.lock().envs.values().map(VecDeque::len).sum()
    }

    /// Current buffer size in (accounted) bytes.
    pub fn total_bytes(&self) -> usize {
        self.lock().total_bytes
    }

    /// Rows evicted so far (row cap + byte budget).
    pub fn evicted_rows(&self) -> u64 {
        self.lock().evicted_rows
    }

    /// Global high watermark: the sequence number the *next* accepted
    /// push will get — equivalently, rows accepted so far.
    pub fn watermark(&self) -> u64 {
        self.lock().next_seq
    }

    /// The newest buffered sequence number for one environment, when
    /// any of its rows survive eviction.
    pub fn env_watermark(&self, env: u16) -> Option<u64> {
        self.lock()
            .envs
            .get(&env)
            .and_then(|b| b.back().map(|r| r.seq))
    }

    /// Snapshot the entire buffer for training (env id order, then
    /// arrival order within each environment).
    pub fn snapshot(&self) -> FeedSnapshot {
        let st = self.lock();
        let n: usize = st.envs.values().map(VecDeque::len).sum();
        let mut features = Vec::with_capacity(n * self.n_features);
        let mut labels = Vec::with_capacity(n);
        let mut env_ids = Vec::with_capacity(n);
        for (&env, buf) in &st.envs {
            for row in buf {
                features.extend_from_slice(&row.features);
                labels.push(row.label);
                env_ids.push(env);
            }
        }
        FeedSnapshot {
            features,
            labels,
            env_ids,
            n_features: self.n_features,
        }
    }
}

/// Why an adaptation round rolled the serving bundle back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum RollbackReason {
    /// The challenger failed the golden-metric guard on the canary
    /// slice (or tied below the required margin).
    GuardFailed,
    /// The canary AUC could not be computed (e.g. one-class labels) —
    /// an unverifiable challenger never ships.
    CanaryInconclusive,
    /// The adapted bundle could not be durably persisted; promotion
    /// requires a durable artifact, so the champion keeps serving.
    PersistFailed,
}

/// What one [`PromotionController::step`] did.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum AdaptOutcome {
    /// No drift sentinel is armed (legacy bundle without a baseline, or
    /// monitoring disabled) — adaptation is gracefully inert.
    Disabled,
    /// No environment is in the Major band.
    Stable,
    /// A recent promotion or rollback holds the controller quiet.
    Cooldown { remaining: u64 },
    /// A failed retrain holds the controller in backoff.
    Backoff { remaining: u64 },
    /// Major drift seen, but the feed has too few labeled rows.
    AwaitingData {
        env: u16,
        rows: usize,
        needed: usize,
    },
    /// The warm-started retrain panicked or produced no usable model.
    RetrainFailed { env: u16, retries: u32 },
    /// The engine's probe-batch validation rejected the candidate.
    ProbeRejected { env: u16, detail: String },
    /// The challenger was rejected after probe; the pristine champion
    /// is serving again, bit-identical.
    RolledBack {
        env: u16,
        reason: RollbackReason,
        champion_auc: f64,
        challenger_auc: f64,
    },
    /// The challenger passed probe + canary and is now the champion.
    Promoted {
        env: u16,
        generation: u32,
        champion_auc: f64,
        challenger_auc: f64,
    },
}

/// One entry of the adaptation event log (JSONL-exportable).
#[derive(Debug, Clone, Serialize)]
pub struct AdaptEvent {
    /// Controller step counter at emission.
    pub step: u64,
    /// Stage label: `observe`, `retrain`, `probe`, `canary`, `promote`,
    /// `rollback`, `backoff`, `cooldown`, `disabled`.
    pub stage: &'static str,
    /// Trigger environment, when one is in play.
    pub env: Option<u16>,
    /// Trigger PSI, when one is in play.
    pub psi: Option<f64>,
    /// Champion generation at emission.
    pub generation: u32,
    /// Free-form human-readable detail.
    pub detail: String,
}

/// Tuning knobs of the adaptation loop.
#[derive(Debug, Clone)]
pub struct AdaptConfig {
    /// Labeled rows the trigger environment must have buffered before a
    /// retrain is attempted.
    pub min_rows: usize,
    /// Warm-started retrain hyper-parameters (few epochs suffice).
    pub train: TrainConfig,
    /// MRQ length for the retrain (paper default 5).
    pub mrq_len: usize,
    /// MRQ decay γ for the retrain (paper default 0.9).
    pub gamma: f64,
    /// Probe-batch rows drawn from the trigger environment's buffer for
    /// the engine's reload validation.
    pub probe_rows: usize,
    /// Golden-metric guard: the challenger's canary AUC must be at
    /// least the champion's plus this margin, else rollback.
    pub guard_min_auc_gain: f64,
    /// Failed retrains retried at most this many times before cooldown.
    pub max_retries: u32,
    /// Backoff after the k-th consecutive retrain failure, in
    /// controller steps: `backoff_steps << (k-1)` (exponential).
    pub backoff_steps: u64,
    /// Steps the controller stays quiet after a promotion or rollback,
    /// so flapping drift cannot thrash the model.
    pub cooldown_steps: u64,
    /// Quantile points per sketch when capturing the candidate's fresh
    /// drift baseline.
    pub sketch_points: usize,
    /// When set, a promoted bundle is persisted here through the CRC
    /// envelope *before* the promotion commits; a failed save rolls
    /// back.
    pub save_path: Option<PathBuf>,
}

impl Default for AdaptConfig {
    fn default() -> Self {
        AdaptConfig {
            min_rows: 256,
            train: TrainConfig {
                epochs: 15,
                ..TrainConfig::default()
            },
            mrq_len: 5,
            gamma: 0.9,
            probe_rows: 64,
            guard_min_auc_gain: 0.0,
            max_retries: 2,
            backoff_steps: 2,
            cooldown_steps: 8,
            sketch_points: 64,
            save_path: None,
        }
    }
}

/// The champion/challenger promotion state machine.
///
/// Owns the *pristine champion* — an [`Arc`] of the bundle that last
/// passed validation — so a rollback restores bit-identical scoring no
/// matter what the failed challenger did in between. Driven
/// synchronously by the replay loop: one [`PromotionController::step`]
/// observes drift and, when warranted, runs the full
/// retrain → probe → canary → promote-or-rollback chain. All pacing
/// (cooldown, backoff) is counted in controller steps, not wall clock,
/// so the whole loop is deterministic and replayable.
pub struct PromotionController {
    cfg: AdaptConfig,
    champion: Arc<ModelBundle>,
    generation: u32,
    steps: u64,
    cooldown_remaining: u64,
    backoff_remaining: u64,
    retries: u32,
    events: Vec<AdaptEvent>,
}

impl PromotionController {
    /// Build around the currently served champion.
    ///
    /// # Panics
    ///
    /// Panics on non-positive `min_rows`/`probe_rows`/`sketch_points`,
    /// an `mrq_len` of zero, or `gamma` outside `(0, 1]`.
    pub fn new(champion: Arc<ModelBundle>, cfg: AdaptConfig) -> Self {
        assert!(cfg.min_rows >= 1, "min_rows must be positive");
        assert!(cfg.probe_rows >= 1, "probe_rows must be positive");
        assert!(cfg.sketch_points >= 2, "sketch_points must be at least 2");
        assert!(cfg.mrq_len >= 1, "mrq_len must be positive");
        assert!(
            cfg.gamma > 0.0 && cfg.gamma <= 1.0,
            "gamma must be in (0, 1]"
        );
        let generation = champion.lineage.as_ref().map_or(0, |l| l.generation);
        PromotionController {
            cfg,
            champion,
            generation,
            steps: 0,
            cooldown_remaining: 0,
            backoff_remaining: 0,
            retries: 0,
            events: Vec::new(),
        }
    }

    /// The pristine champion a rollback restores.
    pub fn champion(&self) -> Arc<ModelBundle> {
        Arc::clone(&self.champion)
    }

    /// Adaptation generation of the current champion.
    pub fn generation(&self) -> u32 {
        self.generation
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The transition log accumulated so far.
    pub fn events(&self) -> &[AdaptEvent] {
        &self.events
    }

    /// Write the transition log as JSONL (one event per line).
    ///
    /// # Errors
    ///
    /// I/O errors from creating or writing the file.
    pub fn write_event_log(&self, path: &std::path::Path) -> std::io::Result<()> {
        use std::io::Write;
        let mut out = String::new();
        for ev in &self.events {
            out.push_str(&serde_json::to_string(ev).expect("event serializes infallibly"));
            out.push('\n');
        }
        let mut f = std::fs::File::create(path)?;
        f.write_all(out.as_bytes())
    }

    fn emit(&mut self, stage: &'static str, env: Option<u16>, psi: Option<f64>, detail: String) {
        let env_label = env.map_or_else(|| "-".to_string(), |e| e.to_string());
        let gen_label = self.generation.to_string();
        lightmirm_core::event!(
            "adapt_transition",
            stage = stage,
            env = env_label,
            generation = gen_label,
            detail = detail,
        );
        self.events.push(AdaptEvent {
            step: self.steps,
            stage,
            env,
            psi,
            generation: self.generation,
            detail,
        });
    }

    /// Run one deterministic adaptation step against the engine's drift
    /// report and the labeled feed. See the module docs for the state
    /// machine; the returned [`AdaptOutcome`] says which arm ran.
    pub fn step(&mut self, engine: &ScoringEngine, feed: &LabelFeed) -> AdaptOutcome {
        self.steps += 1;
        if self.cooldown_remaining > 0 {
            self.cooldown_remaining -= 1;
            return AdaptOutcome::Cooldown {
                remaining: self.cooldown_remaining,
            };
        }
        if self.backoff_remaining > 0 {
            self.backoff_remaining -= 1;
            return AdaptOutcome::Backoff {
                remaining: self.backoff_remaining,
            };
        }

        // ---- Observe ----------------------------------------------------
        let Some(report) = engine.drift_report() else {
            // No sentinel: legacy bundle without a baseline, or
            // monitoring off. Adaptation is inert, not an error.
            if self.steps == 1 {
                self.emit("disabled", None, None, "no drift sentinel armed".into());
            }
            return AdaptOutcome::Disabled;
        };
        // Worst Major environment by its highest signal PSI.
        let trigger = report
            .envs
            .iter()
            .filter(|e| e.level() == DriftLevel::Major)
            .map(|e| {
                let psi = e
                    .signals
                    .iter()
                    .map(|s| s.psi)
                    .fold(f64::NEG_INFINITY, f64::max);
                (e.env_id, psi)
            })
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite psi"));
        let Some((trigger_env, trigger_psi)) = trigger else {
            return AdaptOutcome::Stable;
        };

        let rows = feed.rows(trigger_env);
        if rows < self.cfg.min_rows {
            self.emit(
                "observe",
                Some(trigger_env),
                Some(trigger_psi),
                format!(
                    "major drift, awaiting labels: {rows}/{} rows",
                    self.cfg.min_rows
                ),
            );
            return AdaptOutcome::AwaitingData {
                env: trigger_env,
                rows,
                needed: self.cfg.min_rows,
            };
        }

        // ---- Retrain ----------------------------------------------------
        self.emit(
            "retrain",
            Some(trigger_env),
            Some(trigger_psi),
            format!(
                "warm-started retrain over {} buffered rows",
                feed.total_rows()
            ),
        );
        obs::registry().counter("adapt_retrains_total", &[]).inc();
        let snapshot = feed.snapshot();
        let rows_used = snapshot.n_rows() as u64;
        let candidate = match self.retrain(&snapshot, trigger_env, trigger_psi) {
            Some(c) => c,
            None => {
                self.retries += 1;
                obs::registry()
                    .counter("adapt_retrain_failures_total", &[])
                    .inc();
                if self.retries > self.cfg.max_retries {
                    let detail =
                        format!("retrain failed {} times, entering cooldown", self.retries);
                    self.emit("cooldown", Some(trigger_env), Some(trigger_psi), detail);
                    let failed = self.retries;
                    self.retries = 0;
                    self.cooldown_remaining = self.cfg.cooldown_steps;
                    return AdaptOutcome::RetrainFailed {
                        env: trigger_env,
                        retries: failed,
                    };
                }
                self.backoff_remaining = self.cfg.backoff_steps << (self.retries - 1);
                self.emit(
                    "backoff",
                    Some(trigger_env),
                    Some(trigger_psi),
                    format!(
                        "retrain failed (attempt {}), backing off {} steps",
                        self.retries, self.backoff_remaining
                    ),
                );
                return AdaptOutcome::RetrainFailed {
                    env: trigger_env,
                    retries: self.retries,
                };
            }
        };
        let _ = rows_used; // recorded in the candidate's lineage

        // ---- Probe ------------------------------------------------------
        // Validate through the engine's reload path: serialized by the
        // reload token, probe-batch checked, monitor rearmed against the
        // candidate's fresh baseline. On success the challenger serves.
        let (probe_feats, probe_envs) = probe_batch(&snapshot, trigger_env, self.cfg.probe_rows);
        self.emit(
            "probe",
            Some(trigger_env),
            Some(trigger_psi),
            format!("reload candidate with {}-row probe", probe_envs.len()),
        );
        if let Err(e) = engine.reload(candidate.clone(), &probe_feats, &probe_envs) {
            self.retries += 1;
            obs::registry()
                .counter("adapt_retrain_failures_total", &[])
                .inc();
            self.backoff_remaining = self.cfg.backoff_steps << (self.retries - 1).min(8);
            self.emit(
                "backoff",
                Some(trigger_env),
                Some(trigger_psi),
                format!("probe rejected candidate: {e}"),
            );
            return AdaptOutcome::ProbeRejected {
                env: trigger_env,
                detail: e.to_string(),
            };
        }

        // ---- Canary -----------------------------------------------------
        // Golden-metric guard on the trigger environment's held-out
        // labeled rows, scored directly by both bundles — deterministic,
        // independent of live traffic.
        let (canary_feats, canary_envs, canary_labels) = env_slice(&snapshot, trigger_env);
        let champ_scores = self.champion.score_batch(&canary_feats, &canary_envs);
        let chall_scores = candidate.score_batch(&canary_feats, &canary_envs);
        let aucs = auc(&champ_scores, &canary_labels)
            .and_then(|a| auc(&chall_scores, &canary_labels).map(|b| (a, b)));
        let (champion_auc, challenger_auc, guard_passed, reason) = match aucs {
            Ok((a, b)) => (
                a,
                b,
                b >= a + self.cfg.guard_min_auc_gain,
                RollbackReason::GuardFailed,
            ),
            Err(_) => (
                f64::NAN,
                f64::NAN,
                false,
                RollbackReason::CanaryInconclusive,
            ),
        };
        self.emit(
            "canary",
            Some(trigger_env),
            Some(trigger_psi),
            format!(
                "champion auc {champion_auc:.4}, challenger auc {challenger_auc:.4}, \
                 guard margin {:.4}: {}",
                self.cfg.guard_min_auc_gain,
                if guard_passed { "pass" } else { "fail" }
            ),
        );
        if !guard_passed {
            return self.rollback(
                engine,
                trigger_env,
                trigger_psi,
                reason,
                champion_auc,
                challenger_auc,
            );
        }

        // ---- Promote ----------------------------------------------------
        // Durable persistence gates the commit: an adapted model that
        // cannot be saved would be lost on restart, so it never ships.
        if let Some(path) = self.cfg.save_path.clone() {
            if let Err(e) = candidate.save_to_path(&path) {
                self.emit(
                    "rollback",
                    Some(trigger_env),
                    Some(trigger_psi),
                    format!("persist failed: {e}"),
                );
                return self.rollback(
                    engine,
                    trigger_env,
                    trigger_psi,
                    RollbackReason::PersistFailed,
                    champion_auc,
                    challenger_auc,
                );
            }
        }
        self.champion = Arc::new(candidate);
        self.generation += 1;
        self.retries = 0;
        self.cooldown_remaining = self.cfg.cooldown_steps;
        obs::registry().counter("adapt_promotions_total", &[]).inc();
        obs::registry()
            .gauge("adapt_generation", &[])
            .set(f64::from(self.generation));
        self.emit(
            "promote",
            Some(trigger_env),
            Some(trigger_psi),
            format!(
                "challenger promoted to generation {} (auc {challenger_auc:.4} vs {champion_auc:.4})",
                self.generation
            ),
        );
        AdaptOutcome::Promoted {
            env: trigger_env,
            generation: self.generation,
            champion_auc,
            challenger_auc,
        }
    }

    /// Restore the pristine champion as the served bundle (empty probe:
    /// an exact clone needs no re-validation) and enter cooldown.
    fn rollback(
        &mut self,
        engine: &ScoringEngine,
        env: u16,
        psi: f64,
        reason: RollbackReason,
        champion_auc: f64,
        challenger_auc: f64,
    ) -> AdaptOutcome {
        engine
            .reload((*self.champion).clone(), &[], &[])
            .expect("rollback reload cannot fail: dimensions match and the probe is empty");
        self.cooldown_remaining = self.cfg.cooldown_steps;
        obs::registry().counter("adapt_rollbacks_total", &[]).inc();
        self.emit(
            "rollback",
            Some(env),
            Some(psi),
            format!("champion restored bit-identically ({reason:?})"),
        );
        AdaptOutcome::RolledBack {
            env,
            reason,
            champion_auc,
            challenger_auc,
        }
    }

    /// Warm-started LightMIRM retrain of the LR head over the buffered
    /// rows, with the champion's GBDT leaf transform frozen. Returns the
    /// assembled candidate bundle (fresh baseline + lineage), or `None`
    /// when the retrain panicked or produced an unusable model.
    fn retrain(
        &self,
        snapshot: &FeedSnapshot,
        trigger_env: u16,
        trigger_psi: f64,
    ) -> Option<ModelBundle> {
        let parent = &self.champion;
        let parent_baseline = parent.baseline.as_ref()?;
        if snapshot.n_features != parent.n_features() {
            return None;
        }

        // Frozen leaf transform: the champion's extractor re-encodes the
        // buffered rows into the leaf space its head was trained on.
        let indices = parent.extractor.transform_batch(&snapshot.features);
        let x = MultiHotMatrix::new(
            indices,
            parent.extractor.n_trees(),
            parent.extractor.total_leaves(),
        )
        .ok()?;

        // Compact the sparse province ids into dense environment
        // indices for the trainer (BTreeMap order: deterministic).
        let mut compact: BTreeMap<u16, u16> = BTreeMap::new();
        for &e in &snapshot.env_ids {
            let next = compact.len() as u16;
            compact.entry(e).or_insert(next);
        }
        let env_names: Vec<String> = compact.keys().map(|e| format!("province_{e}")).collect();
        let dense_ids: Vec<u16> = snapshot.env_ids.iter().map(|e| compact[e]).collect();
        let data = EnvDataset::new(x, snapshot.labels.clone(), dense_ids, env_names).ok()?;

        // Warm start from the champion's global head.
        let init = match &parent.model {
            lightmirm_core::bundle::StoredModel::Global(m) => m.clone(),
            lightmirm_core::bundle::StoredModel::PerEnv { base, .. } => base.clone(),
        };
        let trainer =
            LightMirmTrainer::with_mrq(self.cfg.train.clone(), self.cfg.mrq_len, self.cfg.gamma);
        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // Failpoint: a retrain that dies mid-flight (bad memory, a
            // poisoned batch, …) — the controller must retry/backoff.
            failpoint::pause_or_panic("adapt::retrain");
            trainer.fit_warm(&data, init, None)
        }))
        .ok()?;
        let mut model = match out.model {
            TrainedModel::Global(m) => m,
            TrainedModel::PerEnv { base, .. } => base,
        };
        if !model.weights.iter().all(|w| w.is_finite()) {
            return None;
        }
        // Failpoint: a *silently* bad retrain — weights that score
        // finite probabilities (so the probe passes) but rank inversely.
        // Only the canary's golden-metric guard can catch this one.
        if failpoint::fire("adapt::bad_retrain").is_some() {
            for w in &mut model.weights {
                *w = -*w;
            }
        }

        // Assemble the candidate: frozen extractor + retrained head,
        // fresh drift baseline captured from the candidate's own scores
        // on the buffered rows (same monitored columns as the parent, so
        // the sentinel rearms against the *new* bundle's world), and a
        // lineage record tying it to the champion.
        let trained = TrainedModel::Global(model);
        let metadata = lightmirm_core::bundle::BundleMetadata {
            trainer: format!(
                "{}+adapt(gen={})",
                parent.metadata.trainer,
                self.generation + 1
            ),
            seed: self.cfg.train.seed,
            notes: format!(
                "warm-started adaptation of crc32={:08x}, trigger env {trigger_env} psi {trigger_psi:.4}",
                parent.payload_crc32()
            ),
        };
        let candidate = ModelBundle::new(parent.extractor.clone(), &trained, metadata).ok()?;
        let scores = candidate.score_batch(&snapshot.features, &snapshot.env_ids);
        let baseline = DriftBaseline::capture(
            &scores,
            &snapshot.env_ids,
            &snapshot.features,
            snapshot.n_features,
            &parent_baseline.columns,
            self.cfg.sketch_points,
        );
        let lineage = BundleLineage {
            parent_crc32: parent.payload_crc32(),
            trigger_env,
            trigger_psi,
            rows_used: snapshot.n_rows() as u64,
            generation: self.generation + 1,
        };
        Some(candidate.with_baseline(baseline).with_lineage(lineage))
    }
}

/// Up to `max_rows` of `env`'s rows from the snapshot, as a probe batch.
fn probe_batch(snapshot: &FeedSnapshot, env: u16, max_rows: usize) -> (Vec<f32>, Vec<u16>) {
    let nf = snapshot.n_features;
    let mut feats = Vec::new();
    let mut envs = Vec::new();
    for (r, &e) in snapshot.env_ids.iter().enumerate() {
        if e == env {
            feats.extend_from_slice(&snapshot.features[r * nf..(r + 1) * nf]);
            envs.push(e);
            if envs.len() >= max_rows {
                break;
            }
        }
    }
    (feats, envs)
}

/// All of `env`'s rows from the snapshot: features, env ids, labels.
fn env_slice(snapshot: &FeedSnapshot, env: u16) -> (Vec<f32>, Vec<u16>, Vec<u8>) {
    let nf = snapshot.n_features;
    let mut feats = Vec::new();
    let mut envs = Vec::new();
    let mut labels = Vec::new();
    for (r, &e) in snapshot.env_ids.iter().enumerate() {
        if e == env {
            feats.extend_from_slice(&snapshot.features[r * nf..(r + 1) * nf]);
            envs.push(e);
            labels.push(snapshot.labels[r]);
        }
    }
    (feats, envs, labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(cap: usize, bytes: usize) -> LabelFeed {
        LabelFeed::new(
            2,
            FeedConfig {
                max_rows_per_env: cap,
                max_bytes: bytes,
            },
        )
    }

    #[test]
    fn push_assigns_monotone_watermarks() {
        let f = feed(16, 1 << 20);
        assert_eq!(f.push(3, &[1.0, 2.0], 1), Some(0));
        assert_eq!(f.push(5, &[1.0, 2.0], 0), Some(1));
        assert_eq!(f.push(3, &[1.0, 2.0], 1), Some(2));
        assert_eq!(f.watermark(), 3);
        assert_eq!(f.env_watermark(3), Some(2));
        assert_eq!(f.env_watermark(5), Some(1));
        assert_eq!(f.env_watermark(9), None);
        assert_eq!(f.rows(3), 2);
        assert_eq!(f.total_rows(), 3);
    }

    #[test]
    fn malformed_and_non_finite_rows_are_rejected() {
        let f = feed(16, 1 << 20);
        assert_eq!(f.push(0, &[1.0], 1), None, "wrong width");
        assert_eq!(f.push(0, &[1.0, f32::NAN], 1), None, "non-finite");
        assert_eq!(f.push(0, &[1.0, f32::INFINITY], 1), None);
        assert_eq!(f.watermark(), 0, "rejected rows take no sequence number");
        assert_eq!(f.total_rows(), 0);
    }

    #[test]
    fn per_env_cap_evicts_oldest_first() {
        let f = feed(3, 1 << 20);
        for i in 0..5 {
            f.push(1, &[i as f32, 0.0], (i % 2) as u8);
        }
        assert_eq!(f.rows(1), 3);
        assert_eq!(f.evicted_rows(), 2);
        let snap = f.snapshot();
        // Oldest two (0, 1) evicted; 2, 3, 4 survive in arrival order.
        let firsts: Vec<f32> = snap.features.chunks(2).map(|c| c[0]).collect();
        assert_eq!(firsts, [2.0, 3.0, 4.0]);
        // Watermark survives eviction: it counts accepted pushes.
        assert_eq!(f.watermark(), 5);
        assert_eq!(f.env_watermark(1), Some(4));
    }

    #[test]
    fn byte_budget_shrinks_largest_env() {
        let per_row = row_bytes(2);
        // Room for exactly 4 rows.
        let f = feed(100, per_row * 4);
        for i in 0..3 {
            f.push(7, &[i as f32, 0.0], 0);
        }
        f.push(8, &[10.0, 0.0], 1);
        assert_eq!(f.total_rows(), 4);
        assert_eq!(f.total_bytes(), per_row * 4);
        // The fifth row overflows the budget: the largest env (7) loses
        // its oldest row, not the small env 8.
        f.push(8, &[11.0, 0.0], 1);
        assert_eq!(f.total_rows(), 4);
        assert_eq!(f.rows(7), 2);
        assert_eq!(f.rows(8), 2);
        assert_eq!(f.evicted_rows(), 1);
        let snap = f.snapshot();
        let firsts: Vec<f32> = snap.features.chunks(2).map(|c| c[0]).collect();
        assert_eq!(firsts, [1.0, 2.0, 10.0, 11.0]);
    }

    #[test]
    fn snapshot_orders_by_env_then_arrival() {
        let f = feed(16, 1 << 20);
        f.push(5, &[50.0, 0.0], 1);
        f.push(1, &[10.0, 0.0], 0);
        f.push(5, &[51.0, 0.0], 1);
        let snap = f.snapshot();
        assert_eq!(snap.env_ids, [1, 5, 5]);
        assert_eq!(snap.labels, [0, 1, 1]);
        let firsts: Vec<f32> = snap.features.chunks(2).map(|c| c[0]).collect();
        assert_eq!(firsts, [10.0, 50.0, 51.0]);
        assert_eq!(snap.n_rows(), 3);
    }

    #[test]
    fn probe_and_canary_slices_select_the_trigger_env() {
        let f = feed(16, 1 << 20);
        for i in 0..6 {
            f.push((i % 2) as u16, &[i as f32, 0.0], (i % 2) as u8);
        }
        let snap = f.snapshot();
        let (pf, pe) = probe_batch(&snap, 1, 2);
        assert_eq!(pe, [1, 1]);
        assert_eq!(pf.len(), 4);
        let (cf, ce, cl) = env_slice(&snap, 1);
        assert_eq!(ce, [1, 1, 1]);
        assert_eq!(cl, [1, 1, 1]);
        assert_eq!(
            cf.chunks(2).map(|c| c[0]).collect::<Vec<_>>(),
            [1.0, 3.0, 5.0]
        );
    }

    #[test]
    #[should_panic(expected = "max_bytes")]
    fn feed_rejects_budget_below_one_row() {
        let _ = LabelFeed::new(
            1024,
            FeedConfig {
                max_rows_per_env: 4,
                max_bytes: 8,
            },
        );
    }
}
