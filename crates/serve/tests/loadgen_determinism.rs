//! Loadgen determinism: the same trace + seed + shard count must yield
//! a byte-identical reply stream and identical per-shard scoring stats,
//! regardless of how many submitter threads replay it or how wide the
//! rayon pool is (CI runs this file under `RAYON_NUM_THREADS={1,4}`).
//!
//! Flash-crowd traces carry only `Normal`-priority events, so no event
//! is ever shed and each shard's request/row counters are a pure
//! function of the trace — the strongest determinism claim the replay
//! can make. (Mixed-priority traces keep the *score stream* identical
//! via shed-retry, but shed counters there are timing-dependent, which
//! is why this test pins the pattern.)

use std::time::Duration;

use lightmirm_core::bundle::{BundleMetadata, ModelBundle};
use lightmirm_core::lr::LrModel;
use lightmirm_core::trainers::TrainedModel;
use lightmirm_serve::loadgen::{
    replay, synthesize_trace, ReplayOutcome, TraceConfig, TracePattern,
};
use lightmirm_serve::{EngineConfig, ShardConfig, ShardedEngine};
use loansim::{generate, GeneratorConfig};

fn fixture() -> (ModelBundle, TraceConfig) {
    let frame = generate(&GeneratorConfig::small(2_000, 53));
    let cfg = lightmirm_gbdt::GbdtConfig {
        n_trees: 4,
        ..Default::default()
    };
    let gbdt = lightmirm_gbdt::Gbdt::fit(
        frame.feature_matrix(),
        frame.n_features(),
        &frame.label,
        &cfg,
    )
    .expect("GBDT fits");
    let weights: Vec<f64> = (0..gbdt.total_leaves())
        .map(|i| ((i % 13) as f64 - 6.0) * 0.05)
        .collect();
    let bundle = ModelBundle::new(
        gbdt,
        &TrainedModel::Global(LrModel { weights }),
        BundleMetadata::default(),
    )
    .expect("dimensions match");
    let envs = frame
        .province
        .iter()
        .copied()
        .max()
        .map(|p| p + 1)
        .unwrap_or(1);
    let tc = TraceConfig::quick(TracePattern::FlashCrowd, frame.n_features() as u32, envs);
    (bundle, tc)
}

fn replay_once(
    bundle: &ModelBundle,
    tc: &TraceConfig,
    shards: usize,
    submitters: usize,
) -> (ReplayOutcome, Vec<(u64, u64)>) {
    let engine = ShardedEngine::new(
        bundle,
        &ShardConfig {
            shards,
            engine: EngineConfig {
                max_batch: 64,
                max_wait: Duration::from_micros(200),
                queue_capacity: 1024,
                workers: 2,
                ..EngineConfig::default()
            },
            ..ShardConfig::default()
        },
    );
    let trace = synthesize_trace(tc);
    let outcome = replay(&engine, trace, submitters).expect("trace decodes");
    let stats = engine.shutdown();
    let per_shard = stats.iter().map(|s| (s.requests, s.rows_scored)).collect();
    (outcome, per_shard)
}

#[test]
fn trace_synthesis_is_byte_identical_across_calls() {
    let (_, tc) = fixture();
    let a = synthesize_trace(&tc);
    let b = synthesize_trace(&tc);
    assert!(!a.is_empty());
    assert_eq!(a, b, "same TraceConfig must serialize the same bytes");

    // A different seed is a different trace (the seed is load-bearing).
    let mut other = fixture().1;
    other.seed ^= 0xdead_beef;
    assert_ne!(synthesize_trace(&other), a);
}

#[test]
fn identical_trace_seed_and_shards_give_identical_replies_and_stats() {
    let (bundle, tc) = fixture();
    let (base, base_stats) = replay_once(&bundle, &tc, 3, 1);
    assert!(base.rows > 0);
    assert_eq!(
        base.retried_sheds, 0,
        "flash-crowd traces are all Normal priority; nothing sheds"
    );

    for submitters in [1usize, 3] {
        let (again, again_stats) = replay_once(&bundle, &tc, 3, submitters);
        // Reply stream: byte-identical, event by event, bit by bit.
        assert_eq!(again.events, base.events);
        assert_eq!(again.rows, base.rows);
        assert_eq!(again.score_digest(), base.score_digest());
        assert_eq!(again.scores.len(), base.scores.len());
        for (e, (a, b)) in base.scores.iter().zip(&again.scores).enumerate() {
            assert_eq!(a.len(), b.len(), "event {e} row count");
            for k in 0..a.len() {
                assert_eq!(
                    a[k].to_bits(),
                    b[k].to_bits(),
                    "event {e} row {k} differs with {submitters} submitters"
                );
            }
        }
        // Per-shard work assignment: identical (requests, rows_scored)
        // on every shard — routing is deterministic, not load-balanced.
        assert_eq!(
            again_stats, base_stats,
            "per-shard stats drifted with {submitters} submitters"
        );
    }
}

#[test]
fn different_shard_counts_keep_the_reply_stream_identical() {
    // The shard count changes *where* rows are scored, never *what* the
    // replies are: scores are routing-invariant.
    let (bundle, tc) = fixture();
    let (one, _) = replay_once(&bundle, &tc, 1, 2);
    for shards in [2usize, 4] {
        let (many, per_shard) = replay_once(&bundle, &tc, shards, 2);
        assert_eq!(many.score_digest(), one.score_digest());
        let total: u64 = per_shard.iter().map(|&(_, rows)| rows).sum();
        assert_eq!(total, one.rows, "rows conserved across {shards} shards");
    }
}
