//! The adaptation chaos suite: every failure mode of the promotion
//! state machine, injected deterministically through `core::failpoint`.
//! Compiled only under `--features failpoints`.
//!
//! - a panicking retrain (`adapt::retrain`) walks retry → exponential
//!   backoff → cooldown, then recovers and promotes once the fault
//!   clears;
//! - a silently corrupted candidate head (`adapt::bad_retrain`) slips
//!   past the probe but is caught by the canary guard and rolled back
//!   with bit-identical champion scores;
//! - a persistence failure (`bundle::fsync`) vetoes an otherwise
//!   promotable challenger — promotion requires a durable artifact;
//! - a manual hot reload racing the controller's promotion
//!   (`serve::reload_probe` delayed to widen the window) leaves the
//!   served bundle and the rearmed monitor consistently paired.
//!
//! The retrain-walk test exports the full transition log as JSONL (to
//! `$ADAPT_EVENT_LOG` when set) — the CI chaos job's artifact.
#![cfg(feature = "failpoints")]

use std::path::PathBuf;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use lightmirm_core::bundle::DriftBaseline;
use lightmirm_core::failpoint::{self, FailMode, Fault};
use lightmirm_core::prelude::*;
use lightmirm_core::trainers::TrainConfig;
use lightmirm_serve::{
    AdaptConfig, AdaptOutcome, EngineConfig, FeedConfig, LabelFeed, MonitorConfig,
    PromotionController, RollbackReason, ScoringEngine,
};
use loansim::{generate, temporal_split, GeneratorConfig, ProvinceCatalog};

/// The failpoint registry is process-global: chaos tests run one at a
/// time.
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

struct World {
    bundle: ModelBundle,
    /// Shifted-province stream rows (+3.0 on monitored columns).
    feats: Vec<f32>,
    envs: Vec<u16>,
    labels: Vec<u8>,
    shifted_env: u16,
}

fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| {
        let frame = generate(&GeneratorConfig::small(6_000, 31));
        let split = temporal_split(&frame, 2020);
        let mut fe = FeatureExtractorConfig::default();
        fe.gbdt.n_trees = 6;
        let extractor = FeatureExtractor::fit(&split.train, &fe).expect("GBDT trains");
        let train = extractor
            .to_env_dataset(&split.train, ProvinceCatalog::standard().names(), None)
            .expect("train transform");
        let out = LightMirmTrainer::new(TrainConfig {
            epochs: 4,
            inner_lr: 0.1,
            outer_lr: 0.3,
            ..Default::default()
        })
        .fit(&train, None);
        let bundle = ModelBundle::new(
            extractor.gbdt().clone(),
            &out.model,
            BundleMetadata::default(),
        )
        .expect("dimensions match");

        let nf = bundle.n_features();
        let mut feats = Vec::new();
        let mut envs = Vec::new();
        for k in 0..split.train.len() {
            feats.extend_from_slice(split.train.row(k));
            envs.push(split.train.province[k]);
        }
        let train_scores = bundle.score_batch(&feats, &envs);
        let columns = DriftBaseline::top_k_columns(extractor.gbdt().feature_importance(), 4);
        let baseline = DriftBaseline::capture(&train_scores, &envs, &feats, nf, &columns, 64);
        let bundle = bundle.with_baseline(baseline);

        // Best-sampled province, shifted +3.0 on the monitored columns.
        let mut counts = std::collections::BTreeMap::new();
        for &p in &split.train.province {
            *counts.entry(p).or_insert(0usize) += 1;
        }
        let shifted_env = *counts.iter().max_by_key(|&(_, n)| *n).expect("provinces").0;
        let shift_cols: Vec<usize> = bundle
            .baseline
            .as_ref()
            .expect("baseline")
            .columns
            .iter()
            .map(|&c| c as usize)
            .collect();
        let mut s_feats = Vec::new();
        let mut s_envs = Vec::new();
        let mut s_labels = Vec::new();
        for k in 0..split.train.len() {
            if split.train.province[k] == shifted_env {
                let mut row = split.train.row(k).to_vec();
                for &c in &shift_cols {
                    row[c] += 3.0;
                }
                s_feats.extend_from_slice(&row);
                s_envs.push(shifted_env);
                s_labels.push(split.train.label[k]);
            }
        }
        assert!(s_envs.len() >= 256, "shifted province too small");
        World {
            bundle,
            feats: s_feats,
            envs: s_envs,
            labels: s_labels,
            shifted_env,
        }
    })
}

/// An engine whose sentinel already reports Major for the shifted
/// province, plus a feed holding every labeled shifted row — the
/// controller can be single-stepped from here.
fn armed(w: &World) -> (ScoringEngine, LabelFeed) {
    let engine = ScoringEngine::new(
        w.bundle.clone(),
        EngineConfig {
            max_batch: 128,
            max_wait: Duration::from_millis(1),
            queue_capacity: 1 << 20,
            workers: 2,
            monitor: Some(MonitorConfig {
                window: 1 << 16,
                min_samples: 64,
                check_every: 128,
                n_buckets: 10,
            }),
            ..EngineConfig::default()
        },
    );
    let nf = w.bundle.n_features();
    for (chunk_f, chunk_e) in w.feats.chunks(64 * nf).zip(w.envs.chunks(64)) {
        engine
            .submit(chunk_f.to_vec(), chunk_e.to_vec())
            .expect("accepted")
            .wait()
            .expect("scored");
    }
    engine.drift_monitor().expect("armed").check_now();
    let feed = LabelFeed::new(nf, FeedConfig::default());
    for k in 0..w.envs.len() {
        feed.push(w.envs[k], &w.feats[k * nf..(k + 1) * nf], w.labels[k]);
    }
    (engine, feed)
}

fn cfg(guard: f64) -> AdaptConfig {
    AdaptConfig {
        min_rows: 128,
        train: TrainConfig {
            epochs: 3,
            ..TrainConfig::default()
        },
        guard_min_auc_gain: guard,
        max_retries: 2,
        backoff_steps: 2,
        cooldown_steps: 8,
        ..AdaptConfig::default()
    }
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|s| s.to_bits()).collect()
}

/// Quiet the default panic printer for injected retrain panics (they
/// are expected and caught by the controller); anything else prints.
fn hush_injected_panics() {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.contains("injected panic"));
            if !injected {
                default(info);
            }
        }));
    });
}

/// Re-prime the sentinel after a reload reset its windows: stream the
/// shifted rows through the engine again and force a check.
fn reprime_monitor(engine: &ScoringEngine, w: &World) {
    let nf = w.bundle.n_features();
    for (chunk_f, chunk_e) in w.feats.chunks(64 * nf).zip(w.envs.chunks(64)) {
        engine
            .submit(chunk_f.to_vec(), chunk_e.to_vec())
            .expect("accepted")
            .wait()
            .expect("scored");
    }
    engine.drift_monitor().expect("armed").check_now();
}

#[test]
fn retrain_panics_walk_retry_backoff_then_recover_and_promote() {
    let _serial = CHAOS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    hush_injected_panics();
    let w = world();
    let (engine, feed) = armed(w);
    // Guard -1: any surviving challenger promotes — the test is about
    // the failure walk, not canary quality.
    let mut ctl = PromotionController::new(engine.bundle(), cfg(-1.0));

    failpoint::configure(21);
    failpoint::set(
        "adapt::retrain",
        FailMode::FirstK {
            k: 2,
            fault: Fault::Panic,
        },
    );
    // 1st failure: retry scheduled with backoff 2 steps.
    assert_eq!(
        ctl.step(&engine, &feed),
        AdaptOutcome::RetrainFailed {
            env: w.shifted_env,
            retries: 1
        }
    );
    assert_eq!(
        ctl.step(&engine, &feed),
        AdaptOutcome::Backoff { remaining: 1 }
    );
    assert_eq!(
        ctl.step(&engine, &feed),
        AdaptOutcome::Backoff { remaining: 0 }
    );
    // 2nd failure: backoff doubles to 4 steps.
    assert_eq!(
        ctl.step(&engine, &feed),
        AdaptOutcome::RetrainFailed {
            env: w.shifted_env,
            retries: 2
        }
    );
    for remaining in (0..4).rev() {
        assert_eq!(
            ctl.step(&engine, &feed),
            AdaptOutcome::Backoff { remaining }
        );
    }
    // The injected fault has burnt out (FirstK k=2): recovery promotes.
    assert!(matches!(
        ctl.step(&engine, &feed),
        AdaptOutcome::Promoted { generation: 1, .. }
    ));
    assert_eq!(ctl.generation(), 1);
    assert_eq!(
        failpoint::fired_log().len(),
        2,
        "{:?}",
        failpoint::fired_log()
    );
    failpoint::clear();

    // The walk is all in the transition log — exported as the CI chaos
    // artifact when `$ADAPT_EVENT_LOG` names a path.
    let stages: Vec<&str> = ctl.events().iter().map(|e| e.stage).collect();
    for want in ["retrain", "backoff", "probe", "canary", "promote"] {
        assert!(stages.contains(&want), "missing {want}: {stages:?}");
    }
    let log_path = std::env::var_os("ADAPT_EVENT_LOG")
        .map(PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("lightmirm-adapt-events.jsonl"));
    ctl.write_event_log(&log_path).expect("event log written");
    assert!(log_path.exists());
    engine.shutdown();
}

#[test]
fn exhausted_retries_enter_cooldown_before_trying_again() {
    let _serial = CHAOS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    hush_injected_panics();
    let w = world();
    let (engine, feed) = armed(w);
    let mut ctl = PromotionController::new(engine.bundle(), cfg(-1.0));

    failpoint::configure(22);
    failpoint::set("adapt::retrain", FailMode::Always(Fault::Panic));
    // Attempts 1 and 2 back off (2 then 4 steps, 9 steps total); attempt
    // 3 at step 9 exceeds max_retries=2 and enters cooldown.
    let mut outcomes = Vec::new();
    for _ in 0..9 {
        outcomes.push(ctl.step(&engine, &feed));
    }
    assert!(
        matches!(outcomes[8], AdaptOutcome::RetrainFailed { retries: 3, .. }),
        "{outcomes:?}"
    );
    for _ in 0..8 {
        assert!(matches!(
            ctl.step(&engine, &feed),
            AdaptOutcome::Cooldown { .. }
        ));
    }
    failpoint::clear();
    // Out of cooldown with the fault gone, the next attempt succeeds.
    assert!(matches!(
        ctl.step(&engine, &feed),
        AdaptOutcome::Promoted { .. }
    ));
    engine.shutdown();
}

#[test]
fn corrupted_candidate_passes_probe_but_fails_the_canary_guard() {
    let _serial = CHAOS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    hush_injected_panics();
    let w = world();
    let (engine, feed) = armed(w);
    let offline = w.bundle.score_batch(&w.feats, &w.envs);
    let mut ctl = PromotionController::new(engine.bundle(), cfg(0.0));

    failpoint::configure(23);
    failpoint::set("adapt::bad_retrain", FailMode::Always(Fault::Panic));
    let outcome = ctl.step(&engine, &feed);
    failpoint::clear();
    // The negated head scores anti-correlated: probe validation cannot
    // see that, only the golden-metric canary can.
    assert!(
        matches!(
            outcome,
            AdaptOutcome::RolledBack {
                reason: RollbackReason::GuardFailed,
                ..
            }
        ),
        "{outcome:?}"
    );
    assert_eq!(ctl.generation(), 0);

    // Post-rollback, the engine serves the pristine champion
    // bit-identically.
    let served = engine
        .submit(w.feats.clone(), w.envs.clone())
        .expect("accepted")
        .wait()
        .expect("scored");
    assert_eq!(bits(&served), bits(&offline));
    engine.shutdown();
}

#[test]
fn persistence_failure_vetoes_an_otherwise_promotable_challenger() {
    let _serial = CHAOS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let w = world();
    let (engine, feed) = armed(w);
    let save_path = std::env::temp_dir().join(format!(
        "lightmirm-adapt-chaos-{}.bundle",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&save_path);
    let mut c = cfg(-1.0);
    c.save_path = Some(save_path.clone());
    let mut ctl = PromotionController::new(engine.bundle(), c);

    failpoint::configure(24);
    failpoint::set("bundle::fsync", FailMode::Always(Fault::IoError));
    let outcome = ctl.step(&engine, &feed);
    failpoint::clear();
    assert!(
        matches!(
            outcome,
            AdaptOutcome::RolledBack {
                reason: RollbackReason::PersistFailed,
                ..
            }
        ),
        "{outcome:?}"
    );
    assert_eq!(ctl.generation(), 0, "no durable artifact, no promotion");
    assert!(!save_path.exists(), "failed save must not land");

    // With the fault cleared (and cooldown waited out), the same
    // challenger persists and promotes. The rollback's reload rearmed
    // the sentinel with fresh empty windows, so the shifted stream must
    // be replayed for Major to be visible again.
    for _ in 0..8 {
        assert!(matches!(
            ctl.step(&engine, &feed),
            AdaptOutcome::Cooldown { .. }
        ));
    }
    reprime_monitor(&engine, w);
    assert!(matches!(
        ctl.step(&engine, &feed),
        AdaptOutcome::Promoted { .. }
    ));
    assert!(save_path.exists(), "promotion persists the bundle");
    let persisted = ModelBundle::load_from_path(&save_path).expect("valid envelope");
    assert_eq!(
        persisted.lineage.as_ref().expect("lineage").parent_crc32,
        w.bundle.payload_crc32()
    );
    let _ = std::fs::remove_file(&save_path);
    engine.shutdown();
}

#[test]
fn manual_reload_racing_promotion_stays_consistent() {
    let _serial = CHAOS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let w = world();
    let (engine, feed) = armed(w);
    let engine = Arc::new(engine);
    let mut ctl = PromotionController::new(engine.bundle(), cfg(-1.0));

    // Widen the race window: every reload's probe stalls 20ms inside
    // the critical section, so the manual reload and the promotion's
    // reload genuinely contend for the token.
    failpoint::configure(25);
    failpoint::set("serve::reload_probe", FailMode::Always(Fault::Delay(20)));
    let mut legacy = w.bundle.clone();
    legacy.baseline = None;
    let rival = {
        let engine = Arc::clone(&engine);
        std::thread::spawn(move || {
            for _ in 0..3 {
                engine
                    .reload(legacy.clone(), &[], &[])
                    .expect("valid manual candidate");
            }
        })
    };
    let outcome = ctl.step(&engine, &feed);
    rival.join().expect("no panic");
    failpoint::clear();

    // The interleaving is genuinely racy: if a manual reload of the
    // baseline-less bundle lands before the controller reads the drift
    // report, the step sees no sentinel and stays inert; otherwise the
    // promotion goes through. Both are legal — what must hold is that
    // every reload was serialized by the token.
    let promoted = matches!(outcome, AdaptOutcome::Promoted { .. });
    assert!(
        promoted || matches!(outcome, AdaptOutcome::Disabled),
        "{outcome:?}"
    );
    // Whoever won the last reload, the served bundle and the monitor
    // swapped atomically: baseline presence and sentinel presence agree.
    let bundle = engine.bundle();
    assert_eq!(
        bundle.baseline.is_some(),
        engine.drift_monitor().is_some(),
        "reload token must serialize the probe + rearm + swap"
    );
    assert_eq!(
        engine.stats().reloads,
        3 + u64::from(promoted),
        "3 manual reloads, plus the promotion's when it ran"
    );
    Arc::try_unwrap(engine)
        .unwrap_or_else(|_| panic!("sole owner"))
        .shutdown();
}
