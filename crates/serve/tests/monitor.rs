//! The drift sentinel's two contracts, proven end-to-end through the
//! engine:
//!
//! 1. **Observation-only** — scores are bit-identical with the monitor
//!    armed or absent, and with a trace sink attached while a span
//!    profile is being harvested from the ring. The serve-side extension
//!    of `crates/core/tests/obs_determinism.rs`.
//! 2. **Detection** — replaying a shifted split reports
//!    [`DriftLevel::Major`] for the shifted environment while the
//!    environment still on the training distribution stays `Stable`.

use std::time::Duration;

use lightmirm_core::bundle::DriftBaseline;
use lightmirm_core::obs::{self, Profile};
use lightmirm_core::prelude::*;
use lightmirm_core::trainers::TrainConfig;
use lightmirm_metrics::drift::DriftLevel;
use lightmirm_serve::{EngineConfig, MonitorConfig, ScoringEngine};
use loansim::{generate, temporal_split, GeneratorConfig, LoanFrame, ProvinceCatalog};

/// Train a small LightMIRM bundle with a captured drift baseline, and
/// keep the train/test frames plus the offline scores of the test
/// stream for bit-exact comparison.
fn monitored_world() -> (ModelBundle, LoanFrame, LoanFrame, Vec<f64>) {
    let frame = generate(&GeneratorConfig::small(8_000, 31));
    let split = temporal_split(&frame, 2020);
    let mut fe = FeatureExtractorConfig::default();
    fe.gbdt.n_trees = 8;
    let extractor = FeatureExtractor::fit(&split.train, &fe).expect("GBDT trains");
    let names = ProvinceCatalog::standard().names();
    let train = extractor
        .to_env_dataset(&split.train, names, None)
        .expect("train transform");
    let out = LightMirmTrainer::new(TrainConfig {
        epochs: 5,
        inner_lr: 0.1,
        outer_lr: 0.3,
        momentum: 0.0,
        ..Default::default()
    })
    .fit(&train, None);

    let bundle = ModelBundle::new(
        extractor.gbdt().clone(),
        &out.model,
        BundleMetadata {
            trainer: "LightMIRM(L=5,g=0.9)".into(),
            seed: 31,
            notes: "drift monitor test".into(),
        },
    )
    .expect("dimensions match");

    // Capture the baseline exactly the way `train` does: score the
    // training rows through the bundle, monitor the top-gain columns.
    let (feats, envs) = flatten(&split.train, bundle.n_features());
    let train_scores = bundle.score_batch(&feats, &envs);
    let columns = DriftBaseline::top_k_columns(extractor.gbdt().feature_importance(), 4);
    let baseline = DriftBaseline::capture(
        &train_scores,
        &envs,
        &feats,
        bundle.n_features(),
        &columns,
        64,
    );
    let bundle = bundle.with_baseline(baseline);

    let (test_feats, test_envs) = flatten(&split.test, bundle.n_features());
    let offline = bundle.score_batch(&test_feats, &test_envs);
    (bundle, split.train, split.test, offline)
}

/// Row-major feature matrix plus env ids for a frame.
fn flatten(frame: &LoanFrame, n_features: usize) -> (Vec<f32>, Vec<u16>) {
    let mut feats = Vec::with_capacity(frame.len() * n_features);
    let mut envs = Vec::with_capacity(frame.len());
    for k in 0..frame.len() {
        feats.extend_from_slice(frame.row(k));
        envs.push(frame.province[k]);
    }
    (feats, envs)
}

/// Score `rows` (feature-slices + env ids) through a fresh engine in
/// chunked requests, returning the concatenated scores and the engine.
fn scores_through_engine(
    bundle: &ModelBundle,
    feats: &[f32],
    envs: &[u16],
    cfg: EngineConfig,
) -> (Vec<f64>, ScoringEngine) {
    let engine = ScoringEngine::new(bundle.clone(), cfg);
    let nf = bundle.n_features();
    let mut pending = Vec::new();
    for (chunk_f, chunk_e) in feats.chunks(17 * nf).zip(envs.chunks(17)) {
        pending.push(
            engine
                .submit(chunk_f.to_vec(), chunk_e.to_vec())
                .expect("accepted"),
        );
    }
    let mut scores = Vec::with_capacity(envs.len());
    for p in pending {
        scores.extend(p.wait().expect("scored"));
    }
    (scores, engine)
}

fn cfg(monitor: Option<MonitorConfig>) -> EngineConfig {
    EngineConfig {
        max_batch: 128,
        max_wait: Duration::from_millis(1),
        queue_capacity: 1 << 20,
        workers: 2,
        monitor,
        ..EngineConfig::default()
    }
}

#[test]
fn scores_are_bit_identical_with_monitor_on_off_and_profiled() {
    let (bundle, _train, test, offline) = monitored_world();
    let (feats, envs) = flatten(&test, bundle.n_features());

    // Monitor absent.
    let (bare, engine) = scores_through_engine(&bundle, &feats, &envs, cfg(None));
    assert!(engine.drift_report().is_none(), "no monitor configured");
    drop(engine);
    assert_eq!(bare, offline, "engine must match offline scoring");

    // Monitor armed.
    let (armed, engine) = scores_through_engine(
        &bundle,
        &feats,
        &envs,
        cfg(Some(MonitorConfig {
            check_every: 64,
            ..MonitorConfig::default()
        })),
    );
    let report = engine.drift_report().expect("monitor armed");
    assert!(
        report.envs.iter().any(|e| e.checks > 0),
        "monitor observed and checked: {report:?}"
    );
    drop(engine);
    assert_eq!(armed, offline, "sentinel must not perturb scores");

    // Monitor armed + a trace sink attached + a span profile harvested
    // from the ring mid-flight (the `--profile-out` shape).
    let dir = std::env::temp_dir().join("lightmirm_monitor_test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let sink_path = dir.join("trace.jsonl");
    let sink = obs::JsonLinesSink::create(&sink_path).expect("sink file");
    let sink_id = obs::tracer().add_sink(std::sync::Arc::new(sink));
    let (sunk, engine) =
        scores_through_engine(&bundle, &feats, &envs, cfg(Some(MonitorConfig::default())));
    let profile = Profile::from_ring();
    profile
        .write(&dir.join("profile.txt"))
        .expect("profile writes");
    drop(engine);
    obs::tracer().remove_sink(sink_id);
    assert_eq!(sunk, offline, "sink + profiler must not perturb scores");
}

#[test]
fn shifted_env_reports_major_while_in_distribution_env_stays_stable() {
    let (bundle, train, _test, _offline) = monitored_world();
    let baseline = bundle.baseline.clone().expect("baseline captured");

    // Pick the two best-sampled training environments.
    let mut counts = std::collections::BTreeMap::new();
    for &p in &train.province {
        *counts.entry(p).or_insert(0usize) += 1;
    }
    let mut by_count: Vec<(u16, usize)> = counts.into_iter().collect();
    by_count.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    let (stable_env, shifted_env) = (by_count[0].0, by_count[1].0);
    assert!(baseline.env(stable_env).is_some() && baseline.env(shifted_env).is_some());

    // Replay: the stable env streams its own training rows verbatim;
    // the shifted env streams its rows with every feature pushed +3.0
    // out of distribution (a 2020-style covariate shift).
    let mut feats = Vec::new();
    let mut envs = Vec::new();
    for k in 0..train.len() {
        let p = train.province[k];
        if p == stable_env {
            feats.extend_from_slice(train.row(k));
            envs.push(p);
        } else if p == shifted_env {
            feats.extend(train.row(k).iter().map(|v| v + 3.0));
            envs.push(p);
        }
    }

    let (_scores, engine) = scores_through_engine(
        &bundle,
        &feats,
        &envs,
        cfg(Some(MonitorConfig {
            window: 1 << 16,
            min_samples: 64,
            check_every: 128,
            n_buckets: 10,
        })),
    );
    // Shutdown path: force a final check so short replays still report.
    engine.drift_monitor().expect("armed").check_now();
    let report = engine.drift_report().expect("armed");
    let stable = report.env(stable_env).expect("stable env monitored");
    let shifted = report.env(shifted_env).expect("shifted env monitored");
    assert!(stable.checks >= 1 && shifted.checks >= 1);
    assert_eq!(stable.level(), DriftLevel::Stable, "{stable:?}");
    assert_eq!(shifted.level(), DriftLevel::Major, "{shifted:?}");
    engine.shutdown();
}
