//! The chaos suite: deterministic fault injection against the serving
//! engine. Compiled only under `--features failpoints`.
//!
//! Contract verified under every injected fault (worker panic at the
//! scoring site, worker-thread death outside it, dispatch delays,
//! probabilistic panic storms): each accepted request is answered
//! exactly once with either scores **bit-identical to the fault-free
//! run** or a structured [`ScoreError`] — zero hangs, zero silent NaNs.
//! Every schedule is seeded, so a failing run replays identically; the
//! fired-fault log is printed for the CI artifact.
#![cfg(feature = "failpoints")]

use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use lightmirm_core::failpoint::{self, FailMode, Fault};
use lightmirm_core::prelude::*;
use lightmirm_core::trainers::TrainConfig;
use lightmirm_serve::{EngineConfig, ScoreError, ScoringEngine};
use loansim::{generate, temporal_split, GeneratorConfig, LoanFrame, ProvinceCatalog};

/// The failpoint registry is process-global: chaos tests run one at a
/// time. (The fixture is also only built once, under this lock.)
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

struct World {
    bundle: ModelBundle,
    stream: LoanFrame,
    offline: Vec<f64>,
}

fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| {
        let frame = generate(&GeneratorConfig::small(6_000, 61));
        let split = temporal_split(&frame, 2020);
        let mut fe = FeatureExtractorConfig::default();
        fe.gbdt.n_trees = 6;
        let extractor = FeatureExtractor::fit(&split.train, &fe).expect("GBDT trains");
        let names = ProvinceCatalog::standard().names();
        let train = extractor
            .to_env_dataset(&split.train, names, None)
            .expect("train transform");
        let out = ErmTrainer::new(TrainConfig {
            epochs: 4,
            ..Default::default()
        })
        .fit(&train, None);
        let bundle = ModelBundle::new(
            extractor.gbdt().clone(),
            &out.model,
            BundleMetadata::default(),
        )
        .expect("dimensions match");
        // The fault-free reference: the bundle's own batch path, which
        // the serve-equivalence suite already proves matches offline.
        let stream = split.test;
        let n = stream.len();
        let mut features = Vec::with_capacity(n * bundle.n_features());
        let mut env_ids = Vec::with_capacity(n);
        for k in 0..n {
            features.extend_from_slice(stream.row(k));
            env_ids.push(stream.province[k]);
        }
        let offline = bundle.score_batch(&features, &env_ids);
        World {
            bundle,
            stream,
            offline,
        }
    })
}

/// Quiet the default panic printer for injected worker panics (they are
/// expected and caught); anything from a non-worker thread still prints.
fn hush_worker_panics() {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let from_worker = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with("lightmirm-score-"));
            if !from_worker {
                default(info);
            }
        }));
    });
}

fn engine(cfg: EngineConfig) -> ScoringEngine {
    ScoringEngine::new(world().bundle.clone(), cfg)
}

/// Submit `n` single-row requests, wait for all, and return each
/// request's outcome.
fn drive(engine: &ScoringEngine, n: usize) -> Vec<Result<Vec<f64>, ScoreError>> {
    let w = world();
    let pending: Vec<_> = (0..n)
        .map(|k| {
            engine
                .submit(w.stream.row(k).to_vec(), vec![w.stream.province[k]])
                .expect("accepted")
        })
        .collect();
    pending.into_iter().map(|p| p.wait()).collect()
}

#[test]
fn transient_scoring_panics_retry_to_bit_identical_scores() {
    let _g = CHAOS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    hush_worker_panics();
    let w = world();
    failpoint::configure(101);
    failpoint::set(
        "serve::score_batch",
        FailMode::FirstK {
            k: 2,
            fault: Fault::Panic,
        },
    );
    let engine = engine(EngineConfig {
        max_batch: 8,
        max_wait: Duration::from_micros(100),
        queue_capacity: 1024,
        workers: 1,
        max_attempts: 3,
        ..EngineConfig::default()
    });
    let outcomes = drive(&engine, 100);
    for (k, outcome) in outcomes.iter().enumerate() {
        let scores = outcome.as_ref().expect("transient faults recover");
        assert_eq!(
            scores[0].to_bits(),
            w.offline[k].to_bits(),
            "row {k} drifted after retries"
        );
    }
    let stats = engine.shutdown();
    failpoint::clear();
    assert_eq!(stats.worker_panics, 2);
    assert!(stats.retried_requests >= 1);
    assert_eq!(stats.poisoned_requests, 0);
    assert_eq!(stats.rows_scored, 100);
}

#[test]
fn persistent_scoring_panics_poison_boundedly_and_never_hang() {
    let _g = CHAOS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    hush_worker_panics();
    failpoint::configure(202);
    failpoint::set("serve::score_batch", FailMode::Always(Fault::Panic));
    let engine = engine(EngineConfig {
        max_batch: 8,
        max_wait: Duration::from_micros(100),
        queue_capacity: 1024,
        workers: 2,
        max_attempts: 2,
        ..EngineConfig::default()
    });
    let outcomes = drive(&engine, 40);
    for (k, outcome) in outcomes.iter().enumerate() {
        assert_eq!(
            outcome.as_ref().unwrap_err(),
            &ScoreError::Poisoned { attempts: 2 },
            "request {k} should exhaust its attempts"
        );
    }
    // The drain itself must also terminate with everything answered.
    let stats = engine.shutdown();
    failpoint::clear();
    assert_eq!(stats.poisoned_requests, 40);
    assert_eq!(stats.rows_scored, 0);
    assert!(stats.worker_panics >= 2);
}

#[test]
fn dead_worker_threads_are_respawned_and_service_continues() {
    let _g = CHAOS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    hush_worker_panics();
    let w = world();
    failpoint::configure(303);
    // Panic at the loop top, outside the scoring guard: the thread dies
    // and only the respawn path can keep the pool alive.
    failpoint::set(
        "serve::worker_loop",
        FailMode::FirstK {
            k: 1,
            fault: Fault::Panic,
        },
    );
    let engine = engine(EngineConfig {
        workers: 1,
        max_wait: Duration::from_micros(100),
        ..EngineConfig::default()
    });
    let outcomes = drive(&engine, 50);
    for (k, outcome) in outcomes.iter().enumerate() {
        assert_eq!(
            outcome.as_ref().expect("respawned worker serves")[0].to_bits(),
            w.offline[k].to_bits(),
            "row {k} drifted across the respawn"
        );
    }
    let stats = engine.shutdown();
    failpoint::clear();
    assert_eq!(stats.workers_respawned, 1);
    assert_eq!(stats.rows_scored, 50);
}

#[test]
fn dispatch_delays_stall_but_never_corrupt() {
    let _g = CHAOS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    hush_worker_panics();
    let w = world();
    failpoint::configure(404);
    failpoint::set(
        "serve::dispatch_delay",
        FailMode::Every {
            n: 3,
            fault: Fault::Delay(5),
        },
    );
    let engine = engine(EngineConfig {
        max_batch: 4,
        max_wait: Duration::from_micros(100),
        workers: 2,
        ..EngineConfig::default()
    });
    let outcomes = drive(&engine, 60);
    for (k, outcome) in outcomes.iter().enumerate() {
        assert_eq!(
            outcome.as_ref().expect("delays are not failures")[0].to_bits(),
            w.offline[k].to_bits(),
            "row {k} drifted under injected delays"
        );
    }
    let stats = engine.shutdown();
    failpoint::clear();
    assert_eq!(stats.rows_scored, 60);
}

/// The acceptance criterion's determinism clause: the same seed replays
/// the same faults and the same per-request outcomes, end to end.
#[test]
fn a_fixed_seed_replays_faults_and_outcomes_identically() {
    let _g = CHAOS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    hush_worker_panics();
    let w = world();
    let run = |seed: u64| -> (Vec<String>, Vec<Result<Vec<u64>, ScoreError>>) {
        failpoint::configure(seed);
        failpoint::set(
            "serve::score_batch",
            FailMode::Prob {
                p: 0.3,
                fault: Fault::Panic,
            },
        );
        // One worker and strictly sequential blocking submits: the
        // site's hit order is then exactly the request/retry order, so
        // the probabilistic schedule is fully reproducible.
        let engine = engine(EngineConfig {
            max_batch: 1,
            max_wait: Duration::from_micros(50),
            workers: 1,
            max_attempts: 2,
            ..EngineConfig::default()
        });
        let outcomes: Vec<Result<Vec<u64>, ScoreError>> = (0..80)
            .map(|k| {
                engine
                    .submit(w.stream.row(k).to_vec(), vec![w.stream.province[k]])
                    .expect("accepted")
                    .wait()
                    .map(|scores| scores.iter().map(|s| s.to_bits()).collect())
            })
            .collect();
        engine.shutdown();
        let log = failpoint::fired_log();
        failpoint::clear();
        (log, outcomes)
    };
    let (log_a, out_a) = run(777);
    let (log_b, out_b) = run(777);
    assert_eq!(log_a, log_b, "fired-fault trace must replay identically");
    assert_eq!(out_a, out_b, "per-request outcomes must replay identically");
    assert!(
        log_a.iter().any(|l| l.contains("Panic")),
        "the schedule must actually fire for this test to mean anything"
    );
    // And the successful outcomes are still bit-identical to fault-free.
    for (k, outcome) in out_a.iter().enumerate() {
        if let Ok(bits) = outcome {
            assert_eq!(bits[0], w.offline[k].to_bits());
        }
    }
    println!("chaos determinism trace ({} faults):", log_a.len());
    for line in &log_a {
        println!("  {line}");
    }
}

/// Requests queued behind a poisoned batch drain correctly when the
/// engine shuts down mid-storm: shutdown must never strand retries.
#[test]
fn shutdown_mid_fault_storm_answers_everything() {
    let _g = CHAOS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    hush_worker_panics();
    failpoint::configure(505);
    failpoint::set(
        "serve::score_batch",
        FailMode::Every {
            n: 2,
            fault: Fault::Panic,
        },
    );
    let engine = engine(EngineConfig {
        max_batch: 4,
        max_wait: Duration::from_micros(100),
        workers: 2,
        max_attempts: 3,
        ..EngineConfig::default()
    });
    let w = world();
    let pending: Vec<_> = (0..60)
        .map(|k| {
            engine
                .submit(w.stream.row(k).to_vec(), vec![w.stream.province[k]])
                .expect("accepted")
        })
        .collect();
    // Shut down immediately: the drain overlaps the fault storm.
    let engine = Arc::new(engine);
    let drainer = {
        let engine = Arc::clone(&engine);
        std::thread::spawn(move || engine.begin_shutdown())
    };
    let mut scored = 0usize;
    let mut poisoned = 0usize;
    for (k, p) in pending.into_iter().enumerate() {
        match p.wait() {
            Ok(scores) => {
                assert_eq!(scores[0].to_bits(), w.offline[k].to_bits());
                scored += 1;
            }
            Err(ScoreError::Poisoned { .. }) => poisoned += 1,
            Err(e) => panic!("unexpected outcome for request {k}: {e}"),
        }
    }
    drainer.join().expect("drainer");
    let engine = Arc::into_inner(engine).expect("drainer joined");
    let stats = engine.shutdown();
    failpoint::clear();
    assert_eq!(scored + poisoned, 60, "every accepted request answered");
    assert_eq!(stats.rows_scored as usize, scored);
}
