//! Chaos for the sharded front end: scoped failpoints (`site#shardN`)
//! target one shard while its siblings keep serving. Compiled only
//! under `--features failpoints`.
//!
//! Verified here: a draining shard's traffic redirects and every reply
//! stays bit-identical; registry eviction under memory pressure never
//! touches an active champion; per-shard hot reloads racing live
//! traffic keep each shard's bundle⇔drift-monitor pairing intact; and
//! shutdown under a full queue cannot deadlock with a producer blocked
//! in `submit` (the drain-on-shutdown regression test).

#![cfg(feature = "failpoints")]

use std::sync::{mpsc, Arc, Mutex, OnceLock};
use std::time::Duration;

use lightmirm_core::bundle::DriftBaseline;
use lightmirm_core::failpoint::{self, FailMode, Fault};
use lightmirm_core::prelude::*;
use lightmirm_core::trainers::TrainConfig;
use lightmirm_serve::registry::{ModelRegistry, RegistryConfig, RegistryError};
use lightmirm_serve::{
    EngineConfig, MonitorConfig, OverflowPolicy, ShardConfig, ShardedEngine, SubmitOptions,
};
use loansim::{generate, temporal_split, GeneratorConfig, LoanFrame, ProvinceCatalog};

/// The failpoint registry is process-global: chaos tests run one at a
/// time. (The fixture is also only built once, under this lock.)
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

struct World {
    bundle: ModelBundle,
    stream: LoanFrame,
    offline: Vec<f64>,
}

fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| {
        let frame = generate(&GeneratorConfig::small(6_000, 67));
        let split = temporal_split(&frame, 2020);
        let mut fe = FeatureExtractorConfig::default();
        fe.gbdt.n_trees = 6;
        let extractor = FeatureExtractor::fit(&split.train, &fe).expect("GBDT trains");
        let names = ProvinceCatalog::standard().names();
        let train = extractor
            .to_env_dataset(&split.train, names, None)
            .expect("train transform");
        let out = ErmTrainer::new(TrainConfig {
            epochs: 4,
            ..Default::default()
        })
        .fit(&train, None);
        let bundle = ModelBundle::new(
            extractor.gbdt().clone(),
            &out.model,
            BundleMetadata::default(),
        )
        .expect("dimensions match");
        let stream = split.test;
        let n = stream.len();
        let mut features = Vec::with_capacity(n * bundle.n_features());
        let mut env_ids = Vec::with_capacity(n);
        for k in 0..n {
            features.extend_from_slice(stream.row(k));
            env_ids.push(stream.province[k]);
        }
        let offline = bundle.score_batch(&features, &env_ids);
        World {
            bundle,
            stream,
            offline,
        }
    })
}

/// Quiet the default panic printer for injected worker panics (they are
/// expected and caught); anything from a non-worker thread still prints.
fn hush_worker_panics() {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let from_worker = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with("lightmirm-score-"));
            if !from_worker {
                default(info);
            }
        }));
    });
}

#[test]
fn a_draining_shards_flood_redirects_while_siblings_hold_deadline() {
    let _g = CHAOS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    hush_worker_panics();
    let w = world();
    failpoint::configure(301);
    // Transient panics scoped to shard 1 only: its retries must still
    // converge to bit-identical scores while shard 0 drains.
    failpoint::set(
        "serve::score_batch#shard1",
        FailMode::FirstK {
            k: 3,
            fault: Fault::Panic,
        },
    );
    let engine = ShardedEngine::new(
        &w.bundle,
        &ShardConfig {
            shards: 4,
            engine: EngineConfig {
                max_batch: 16,
                max_wait: Duration::from_micros(100),
                queue_capacity: 512,
                workers: 1,
                max_attempts: 4,
                ..EngineConfig::default()
            },
            overflow: OverflowPolicy::Redirect,
            ..ShardConfig::default()
        },
    );
    let n = w.stream.len().min(1_200);
    let opts = SubmitOptions {
        deadline: Some(Duration::from_secs(60)),
        ..SubmitOptions::default()
    };
    let mut pending = Vec::with_capacity(n);
    for (k, &province) in w.stream.province.iter().enumerate().take(n) {
        if k == n / 2 {
            // Kill shard 0 mid-flood. Routed traffic for its keys must
            // redirect to siblings from here on; its queued requests
            // drain to completion.
            engine.begin_shutdown_shard(0);
        }
        let (shard, p) = engine
            .submit(province, w.stream.row(k).to_vec(), vec![province], opts)
            .expect("redirect policy keeps accepting while any shard lives");
        if k > n / 2 {
            assert_ne!(shard, 0, "request {k} routed to a draining shard");
        }
        pending.push((k, p));
    }
    for (k, p) in pending {
        let scores = p
            .wait()
            .unwrap_or_else(|e| panic!("request {k} not answered in time: {e}"));
        assert_eq!(scores.len(), 1);
        assert_eq!(
            scores[0].to_bits(),
            w.offline[k].to_bits(),
            "row {k} drifted under shard death + scoped panics"
        );
    }
    let stats = engine.shutdown();
    failpoint::clear();
    let total: u64 = stats.iter().map(|s| s.rows_scored).sum();
    assert_eq!(total as usize, n, "every row answered exactly once");
    assert_eq!(stats.iter().map(|s| s.expired).sum::<u64>(), 0);
    assert_eq!(
        stats[1].worker_panics, 3,
        "the scoped failpoint fired on shard 1 alone"
    );
    assert_eq!(stats.iter().map(|s| s.worker_panics).sum::<u64>(), 3);
    assert!(
        (1..4).all(|i| stats[i].rows_scored > 0),
        "surviving shards all kept scoring: {stats:?}"
    );
}

#[test]
fn registry_eviction_under_pressure_never_evicts_the_active_champion() {
    let _g = CHAOS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let w = world();
    let one = w.bundle.to_json().len();
    // Room for two resident bundles, not three.
    let reg = ModelRegistry::new(&RegistryConfig {
        budget_bytes: 2 * one + one / 2,
    });
    reg.insert(1, w.bundle.clone()).expect("first fits");
    reg.mark_active(1); // tenant 1's serving champion: unevictable
    reg.insert(2, w.bundle.clone()).expect("second fits");

    // Pressure: the third insert must evict, and the only legal victim
    // is the inactive tenant 2.
    reg.insert(3, w.bundle.clone()).expect("evicts an inactive");
    assert!(reg.contains(1), "active champion evicted under pressure");
    assert!(!reg.contains(2));
    assert!(reg.contains(3));
    assert_eq!(reg.evictions(), 1);

    // With every resident pinned, an insert that cannot fit fails
    // loudly and leaves the residents untouched.
    reg.mark_active(3);
    let before = reg.resident();
    let err = reg
        .insert(4, w.bundle.clone())
        .expect_err("nothing evictable");
    match err {
        RegistryError::BudgetExceeded { need, pinned, .. } => {
            assert_eq!(need, one);
            assert_eq!(pinned, 2 * one);
        }
    }
    assert_eq!(reg.resident(), before, "failed insert mutated residents");

    // Retiring a champion makes it evictable again.
    reg.clear_active(1);
    reg.insert(4, w.bundle.clone())
        .expect("retired champion evicts");
    assert!(!reg.contains(1));
    assert!(reg.contains(3) && reg.contains(4));
    assert!(reg.bytes_used() <= reg.budget_bytes());
}

#[test]
fn per_shard_reloads_racing_traffic_keep_bundle_and_monitor_paired() {
    let _g = CHAOS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    hush_worker_panics();
    let w = world();
    failpoint::configure(404);
    // Stretch shard 1's probe validation so every reload_all overlaps
    // in-flight traffic on that shard for multiple batches.
    failpoint::set(
        "serve::reload_probe#shard1",
        FailMode::Always(Fault::Delay(5)),
    );

    let n_probe = 8.min(w.stream.len());
    let mut probe_features = Vec::with_capacity(n_probe * w.bundle.n_features());
    let mut probe_envs = Vec::with_capacity(n_probe);
    for k in 0..n_probe {
        probe_features.extend_from_slice(w.stream.row(k));
        probe_envs.push(w.stream.province[k]);
    }
    // Two candidates with identical scoring weights: one carries a
    // drift baseline (monitor must arm), one does not (monitor must
    // disarm). Scores stay bit-identical across every generation.
    let mut all_features = Vec::with_capacity(w.stream.len() * w.bundle.n_features());
    for k in 0..w.stream.len() {
        all_features.extend_from_slice(w.stream.row(k));
    }
    let baseline = DriftBaseline::capture(
        &w.offline,
        &w.stream.province,
        &all_features,
        w.bundle.n_features(),
        &[0, 1],
        32,
    );
    let with_baseline = w.bundle.clone().with_baseline(baseline);
    let without_baseline = w.bundle.clone();

    let engine = Arc::new(ShardedEngine::new(
        &with_baseline,
        &ShardConfig {
            shards: 2,
            engine: EngineConfig {
                max_batch: 16,
                max_wait: Duration::from_micros(100),
                queue_capacity: 512,
                workers: 1,
                monitor: Some(MonitorConfig::default()),
                ..EngineConfig::default()
            },
            ..ShardConfig::default()
        },
    ));
    let n = w.stream.len().min(1_500);
    let flood = {
        let engine = Arc::clone(&engine);
        std::thread::spawn(move || {
            let w = world();
            let pending: Vec<_> = (0..n)
                .map(|k| {
                    let (_, p) = engine
                        .submit(
                            w.stream.province[k],
                            w.stream.row(k).to_vec(),
                            vec![w.stream.province[k]],
                            SubmitOptions::default(),
                        )
                        .expect("accepted");
                    (k, p)
                })
                .collect();
            for (k, p) in pending {
                let scores = p.wait().expect("answered");
                assert_eq!(
                    scores[0].to_bits(),
                    w.offline[k].to_bits(),
                    "row {k} drifted across reload generations"
                );
            }
        })
    };
    // Toggle the baseline on and off while the flood runs. After every
    // swap, each shard's bundle and monitor must agree: a baseline-ful
    // bundle serves with an armed monitor, a baseline-less one without.
    for round in 0..6 {
        let candidate = if round % 2 == 0 {
            &without_baseline
        } else {
            &with_baseline
        };
        engine
            .reload_all(candidate, &probe_features, &probe_envs)
            .expect("probe passes: candidate scores match the incumbent");
        for i in 0..engine.shards() {
            let has_baseline = engine.shard(i).bundle().baseline.is_some();
            let has_monitor = engine.shard(i).drift_monitor().is_some();
            assert_eq!(has_baseline, candidate.baseline.is_some());
            assert_eq!(
                has_baseline, has_monitor,
                "shard {i} round {round}: bundle and monitor unpaired"
            );
        }
    }
    flood.join().expect("flood thread");
    let engine = Arc::into_inner(engine).expect("flood joined");
    let stats = engine.shutdown();
    failpoint::clear();
    assert_eq!(stats.iter().map(|s| s.rows_scored).sum::<u64>() as usize, n);
    assert_eq!(stats.iter().map(|s| s.reloads).sum::<u64>(), 12);
    assert_eq!(stats.iter().map(|s| s.poisoned_requests).sum::<u64>(), 0);
}

#[test]
fn shutdown_under_a_full_queue_cannot_deadlock_a_blocked_producer() {
    let _g = CHAOS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    hush_worker_panics();
    let w = world();
    failpoint::configure(505);
    // Stall the reply path so the queue backs up and the producer
    // parks in blocking `submit` against the row-count bound.
    failpoint::set("serve::reply#shard0", FailMode::Always(Fault::Delay(10)));
    let engine = Arc::new(ShardedEngine::new(
        &w.bundle,
        &ShardConfig {
            shards: 1,
            engine: EngineConfig {
                max_batch: 4,
                max_wait: Duration::from_micros(100),
                queue_capacity: 8,
                workers: 1,
                ..EngineConfig::default()
            },
            ..ShardConfig::default()
        },
    ));
    let (done_tx, done_rx) = mpsc::channel();
    let producer = {
        let engine = Arc::clone(&engine);
        std::thread::spawn(move || {
            let w = world();
            let mut accepted = Vec::new();
            let mut rejected = 0usize;
            for k in 0..300 {
                match engine.submit(
                    w.stream.province[k],
                    w.stream.row(k).to_vec(),
                    vec![w.stream.province[k]],
                    SubmitOptions::default(),
                ) {
                    Ok((_, p)) => accepted.push((k, p)),
                    Err(e) => {
                        assert_eq!(
                            e,
                            lightmirm_serve::SubmitError::ShuttingDown,
                            "only the shutdown cutoff may reject a blocking submit"
                        );
                        rejected += 1;
                    }
                }
            }
            // Every accepted request must still be answered, correctly.
            let n_accepted = accepted.len();
            for (k, p) in accepted {
                let scores = p.wait().expect("accepted requests drain to replies");
                assert_eq!(scores[0].to_bits(), w.offline[k].to_bits(), "row {k}");
            }
            done_tx.send((n_accepted, rejected)).expect("report");
        })
    };
    // Let the producer wedge against the full queue (replies trickle at
    // 10ms each against a 300-row backlog), then pull the plug.
    std::thread::sleep(Duration::from_millis(150));
    assert!(engine.shard(0).queued_rows() > 0, "queue never filled");
    engine.begin_shutdown_shard(0);
    // The regression under test: the blocked producer must wake, see
    // ShuttingDown, and finish — not sleep forever on a condvar no
    // worker will ever signal again.
    let (accepted, rejected) = done_rx
        .recv_timeout(Duration::from_secs(30))
        .expect("producer deadlocked against shutdown");
    producer.join().expect("producer thread");
    assert!(accepted > 0, "some requests were accepted before the cut");
    assert!(rejected > 0, "the cutoff rejected the blocked submissions");
    assert_eq!(accepted + rejected, 300);
    let engine = Arc::into_inner(engine).expect("producer joined");
    let stats = engine.shutdown();
    failpoint::clear();
    assert_eq!(stats[0].rows_scored as usize, accepted);
}
