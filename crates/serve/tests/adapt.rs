//! The supervised adaptation loop, end to end through the engine:
//!
//! 1. **Recovery** — a covariate + concept shift replay on one province
//!    degrades the frozen champion's AUC; the controller's warm retrain
//!    promotes a challenger that recovers at least half the AUC lost,
//!    carries a lineage record, and rearms the drift sentinel against
//!    its fresh baseline (the shifted stream is back in distribution).
//! 2. **Rollback** — with an unsatisfiable promotion guard every
//!    challenger is rejected and the replay's scores stay bit-identical
//!    to the pre-drift champion's offline scoring.
//! 3. **Graceful degradation** — a legacy bundle without a drift
//!    baseline leaves adaptation inert ([`AdaptOutcome::Disabled`]) and
//!    untouched scores.
//! 4. **Reload serialization** — concurrent `reload` calls are
//!    serialized by the reload token: the served bundle and the rearmed
//!    monitor always pair up, under scoring load.

use std::sync::{Arc, OnceLock};
use std::time::Duration;

use lightmirm_core::bundle::DriftBaseline;
use lightmirm_core::prelude::*;
use lightmirm_core::trainers::TrainConfig;
use lightmirm_metrics::drift::DriftLevel;
use lightmirm_metrics::rank::auc;
use lightmirm_serve::{
    AdaptConfig, AdaptOutcome, EngineConfig, FeedConfig, LabelFeed, MonitorConfig,
    PromotionController, ScoringEngine,
};
use loansim::{generate, temporal_split, GeneratorConfig, ProvinceCatalog};

/// The shift world: a champion trained pre-shift, and a labeled stream
/// where one province undergoes a covariate shift (+3.0 on the
/// monitored top-gain columns) *and* a concept shift (labels inverted),
/// while a second province stays in distribution.
struct World {
    bundle: ModelBundle,
    /// The interleaved drift stream (both provinces, original row order).
    feats: Vec<f32>,
    envs: Vec<u16>,
    labels: Vec<u8>,
    stable_env: u16,
    shifted_env: u16,
    /// Champion AUC on the shifted province before the shift.
    clean_auc: f64,
    /// Champion AUC on the shifted province's shifted stream.
    degraded_auc: f64,
    /// Champion offline scores of the full drift stream.
    offline: Vec<f64>,
    /// The shifted province's slice of the stream, for AUC evaluation.
    shifted_feats: Vec<f32>,
    shifted_envs: Vec<u16>,
    shifted_labels: Vec<u8>,
}

fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| {
        let frame = generate(&GeneratorConfig::small(8_000, 31));
        let split = temporal_split(&frame, 2020);
        let mut fe = FeatureExtractorConfig::default();
        fe.gbdt.n_trees = 8;
        let extractor = FeatureExtractor::fit(&split.train, &fe).expect("GBDT trains");
        let names = ProvinceCatalog::standard().names();
        let train = extractor
            .to_env_dataset(&split.train, names, None)
            .expect("train transform");
        let out = LightMirmTrainer::new(TrainConfig {
            epochs: 5,
            inner_lr: 0.1,
            outer_lr: 0.3,
            ..Default::default()
        })
        .fit(&train, None);
        let bundle = ModelBundle::new(
            extractor.gbdt().clone(),
            &out.model,
            BundleMetadata {
                trainer: "LightMIRM(L=5,g=0.9)".into(),
                seed: 31,
                notes: "adaptation test champion".into(),
            },
        )
        .expect("dimensions match");

        // Baseline captured the way `train` does it.
        let nf = bundle.n_features();
        let mut feats = Vec::with_capacity(split.train.len() * nf);
        let mut envs = Vec::with_capacity(split.train.len());
        for k in 0..split.train.len() {
            feats.extend_from_slice(split.train.row(k));
            envs.push(split.train.province[k]);
        }
        let train_scores = bundle.score_batch(&feats, &envs);
        let columns = DriftBaseline::top_k_columns(extractor.gbdt().feature_importance(), 4);
        let baseline = DriftBaseline::capture(&train_scores, &envs, &feats, nf, &columns, 64);
        let bundle = bundle.with_baseline(baseline);

        // The two best-sampled training provinces.
        let mut counts = std::collections::BTreeMap::new();
        for &p in &split.train.province {
            *counts.entry(p).or_insert(0usize) += 1;
        }
        let mut by_count: Vec<(u16, usize)> = counts.into_iter().collect();
        by_count.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
        let (stable_env, shifted_env) = (by_count[0].0, by_count[1].0);

        // The drift stream: stable province rows verbatim with their
        // labels; shifted province rows with the monitored columns
        // pushed +3.0 and labels inverted (covariate + concept shift).
        let shift_cols: Vec<usize> = bundle
            .baseline
            .as_ref()
            .expect("baseline captured")
            .columns
            .iter()
            .map(|&c| c as usize)
            .collect();
        assert!(!shift_cols.is_empty());
        let mut s_feats = Vec::new();
        let mut s_envs = Vec::new();
        let mut s_labels = Vec::new();
        let (mut clean_feats, mut clean_envs, mut clean_labels) = (Vec::new(), Vec::new(), vec![]);
        for k in 0..split.train.len() {
            let p = split.train.province[k];
            if p == stable_env {
                s_feats.extend_from_slice(split.train.row(k));
                s_envs.push(p);
                s_labels.push(split.train.label[k]);
            } else if p == shifted_env {
                let mut row = split.train.row(k).to_vec();
                for &c in &shift_cols {
                    row[c] += 3.0;
                }
                s_feats.extend_from_slice(&row);
                s_envs.push(p);
                s_labels.push(1 - split.train.label[k]);
                clean_feats.extend_from_slice(split.train.row(k));
                clean_envs.push(p);
                clean_labels.push(split.train.label[k]);
            }
        }

        let offline = bundle.score_batch(&s_feats, &s_envs);
        let clean_scores = bundle.score_batch(&clean_feats, &clean_envs);
        let clean_auc = auc(&clean_scores, &clean_labels).expect("two classes");

        let mut shifted_feats = Vec::new();
        let mut shifted_envs = Vec::new();
        let mut shifted_labels = Vec::new();
        for k in 0..s_envs.len() {
            if s_envs[k] == shifted_env {
                shifted_feats.extend_from_slice(&s_feats[k * nf..(k + 1) * nf]);
                shifted_envs.push(shifted_env);
                shifted_labels.push(s_labels[k]);
            }
        }
        let degraded_scores = bundle.score_batch(&shifted_feats, &shifted_envs);
        let degraded_auc = auc(&degraded_scores, &shifted_labels).expect("two classes");

        World {
            bundle,
            feats: s_feats,
            envs: s_envs,
            labels: s_labels,
            stable_env,
            shifted_env,
            clean_auc,
            degraded_auc,
            offline,
            shifted_feats,
            shifted_envs,
            shifted_labels,
        }
    })
}

fn engine_cfg() -> EngineConfig {
    EngineConfig {
        max_batch: 128,
        max_wait: Duration::from_millis(1),
        queue_capacity: 1 << 20,
        workers: 2,
        monitor: Some(MonitorConfig {
            window: 1 << 16,
            min_samples: 64,
            check_every: 128,
            n_buckets: 10,
        }),
        ..EngineConfig::default()
    }
}

/// The CLI's `--adapt` loop in miniature: serve a chunk, wait, feed its
/// labels, step the controller, repeat. Returns the served scores.
fn adaptive_replay(
    engine: &ScoringEngine,
    controller: &mut PromotionController,
    feed: &LabelFeed,
    w: &World,
    chunk: usize,
) -> Vec<f64> {
    let nf = engine.bundle().n_features();
    let mut scores = Vec::with_capacity(w.envs.len());
    let mut r = 0usize;
    while r < w.envs.len() {
        let n = chunk.min(w.envs.len() - r);
        let got = engine
            .submit(
                w.feats[r * nf..(r + n) * nf].to_vec(),
                w.envs[r..r + n].to_vec(),
            )
            .expect("accepted")
            .wait()
            .expect("scored");
        scores.extend(got);
        for k in r..r + n {
            feed.push(w.envs[k], &w.feats[k * nf..(k + 1) * nf], w.labels[k]);
        }
        controller.step(engine, feed);
        r += n;
    }
    scores
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|s| s.to_bits()).collect()
}

#[test]
fn adaptation_recovers_at_least_half_the_auc_lost_to_the_shift() {
    let w = world();
    let lost = w.clean_auc - w.degraded_auc;
    assert!(
        lost > 0.05,
        "the engineered shift must genuinely degrade the champion: \
         clean {:.4} vs degraded {:.4}",
        w.clean_auc,
        w.degraded_auc
    );

    let engine = ScoringEngine::new(w.bundle.clone(), engine_cfg());
    let feed = LabelFeed::new(w.bundle.n_features(), FeedConfig::default());
    let mut controller = PromotionController::new(
        engine.bundle(),
        AdaptConfig {
            min_rows: 256,
            train: TrainConfig {
                epochs: 40,
                ..TrainConfig::default()
            },
            // One promotion, then hold: the assertions below want the
            // first adapted generation, not a promotion cascade.
            cooldown_steps: 1_000_000,
            ..AdaptConfig::default()
        },
    );
    adaptive_replay(&engine, &mut controller, &feed, w, 64);

    assert_eq!(controller.generation(), 1, "exactly one promotion");
    let adapted = controller.champion();
    let lineage = adapted.lineage.as_ref().expect("promoted bundle lineage");
    assert_eq!(lineage.parent_crc32, w.bundle.payload_crc32());
    assert_eq!(lineage.trigger_env, w.shifted_env);
    assert!(
        lineage.trigger_psi > 0.25,
        "Major PSI: {}",
        lineage.trigger_psi
    );
    assert!(lineage.rows_used >= 256);
    assert_eq!(lineage.generation, 1);

    // The adapted challenger recovers at least half the AUC lost.
    let adapted_scores = adapted.score_batch(&w.shifted_feats, &w.shifted_envs);
    let adapted_auc = auc(&adapted_scores, &w.shifted_labels).expect("two classes");
    let recovered = adapted_auc - w.degraded_auc;
    assert!(
        recovered >= lost / 2.0,
        "recovered {recovered:.4} of {lost:.4} lost \
         (clean {:.4}, degraded {:.4}, adapted {adapted_auc:.4})",
        w.clean_auc,
        w.degraded_auc
    );

    // The engine serves the adapted bundle, and the sentinel was rearmed
    // against its fresh baseline: the shifted stream is in distribution
    // for the new champion, so the province leaves the Major band.
    assert_eq!(
        engine.bundle().payload_crc32(),
        adapted.payload_crc32(),
        "engine serves the promoted challenger"
    );
    let monitor = engine.drift_monitor().expect("rearmed");
    assert_eq!(
        monitor.baseline().envs.len(),
        2,
        "candidate baseline covers exactly the two streamed provinces"
    );
    let nf = w.bundle.n_features();
    for (chunk_f, chunk_e) in w
        .shifted_feats
        .chunks(64 * nf)
        .zip(w.shifted_envs.chunks(64))
    {
        engine
            .submit(chunk_f.to_vec(), chunk_e.to_vec())
            .expect("accepted")
            .wait()
            .expect("scored");
    }
    monitor.check_now();
    let report = engine.drift_report().expect("armed");
    let shifted = report.env(w.shifted_env).expect("monitored");
    assert!(shifted.checks >= 1);
    assert_ne!(
        shifted.level(),
        DriftLevel::Major,
        "post-promotion windows must compare against the new baseline: {shifted:?}"
    );
    // The trigger was the shifted province, never the stable one.
    assert!(
        controller
            .events()
            .iter()
            .all(|e| e.env.is_none() || e.env == Some(w.shifted_env)),
        "stable province {} must not trigger adaptation: {:?}",
        w.stable_env,
        controller.events()
    );
    engine.shutdown();
}

#[test]
fn unsatisfiable_guard_rolls_back_bit_identically_every_time() {
    let w = world();
    let engine = ScoringEngine::new(w.bundle.clone(), engine_cfg());
    let feed = LabelFeed::new(w.bundle.n_features(), FeedConfig::default());
    let mut controller = PromotionController::new(
        engine.bundle(),
        AdaptConfig {
            min_rows: 256,
            train: TrainConfig {
                epochs: 3,
                ..TrainConfig::default()
            },
            // No challenger can gain +10 AUC: every canary fails.
            guard_min_auc_gain: 10.0,
            cooldown_steps: 4,
            ..AdaptConfig::default()
        },
    );
    let served = adaptive_replay(&engine, &mut controller, &feed, w, 64);

    assert_eq!(controller.generation(), 0, "nothing promotes");
    let rollbacks = controller
        .events()
        .iter()
        .filter(|e| e.stage == "rollback")
        .count();
    assert!(rollbacks >= 1, "events: {:?}", controller.events());

    // Every serving window — before, between, and after the rejected
    // challengers — scored bit-identically to the pre-drift champion.
    assert_eq!(
        bits(&served),
        bits(&w.offline),
        "rollback must restore the champion bit-identically"
    );
    // And the engine still serves the pristine champion afterwards.
    let post = engine
        .submit(w.shifted_feats.clone(), w.shifted_envs.clone())
        .expect("accepted")
        .wait()
        .expect("scored");
    assert_eq!(
        bits(&post),
        bits(&w.bundle.score_batch(&w.shifted_feats, &w.shifted_envs))
    );
    engine.shutdown();
}

#[test]
fn legacy_bundle_without_baseline_leaves_adaptation_inert() {
    let w = world();
    let mut legacy = w.bundle.clone();
    legacy.baseline = None;
    let engine = ScoringEngine::new(legacy, engine_cfg());
    assert!(
        engine.drift_report().is_none(),
        "no baseline, no sentinel, even with monitoring configured"
    );

    let feed = LabelFeed::new(w.bundle.n_features(), FeedConfig::default());
    let mut controller = PromotionController::new(engine.bundle(), AdaptConfig::default());
    let nf = w.bundle.n_features();
    for k in 0..512 {
        feed.push(w.envs[k], &w.feats[k * nf..(k + 1) * nf], w.labels[k]);
    }
    for _ in 0..3 {
        assert_eq!(controller.step(&engine, &feed), AdaptOutcome::Disabled);
    }
    let disabled: Vec<_> = controller
        .events()
        .iter()
        .filter(|e| e.stage == "disabled")
        .collect();
    assert_eq!(disabled.len(), 1, "announced once, not per step");

    // Scores are untouched by the inert controller.
    let served = engine
        .submit(w.feats.clone(), w.envs.clone())
        .expect("accepted")
        .wait()
        .expect("scored");
    assert_eq!(bits(&served), bits(&w.offline));
    engine.shutdown();
}

#[test]
fn concurrent_reloads_serialize_and_keep_bundle_and_monitor_paired() {
    let w = world();
    // Two distinguishable candidates: with a baseline the reload rearms
    // the sentinel; without one it disarms it. If two reloads ever
    // interleave inside the swap, the served bundle and the monitor can
    // end up mismatched — the invariant below catches exactly that.
    let with_baseline = Arc::new(w.bundle.clone());
    let mut stripped = w.bundle.clone();
    stripped.baseline = None;
    let without_baseline = Arc::new(stripped);

    let engine = Arc::new(ScoringEngine::new(w.bundle.clone(), engine_cfg()));
    let nf = w.bundle.n_features();
    for round in 0..32 {
        let (a, b) = (Arc::clone(&with_baseline), Arc::clone(&without_baseline));
        let (e1, e2) = (Arc::clone(&engine), Arc::clone(&engine));
        let t1 = std::thread::spawn(move || {
            e1.reload((*a).clone(), &[], &[]).expect("valid candidate");
        });
        let t2 = std::thread::spawn(move || {
            e2.reload((*b).clone(), &[], &[]).expect("valid candidate");
        });
        // Scoring load concurrent with both reloads.
        let served = engine
            .submit(w.feats[..64 * nf].to_vec(), w.envs[..64].to_vec())
            .expect("accepted")
            .wait()
            .expect("scored");
        assert_eq!(served.len(), 64);
        t1.join().expect("no panic");
        t2.join().expect("no panic");

        let bundle = engine.bundle();
        let monitored = engine.drift_monitor().is_some();
        assert_eq!(
            bundle.baseline.is_some(),
            monitored,
            "round {round}: served bundle and monitor must swap atomically"
        );
    }
    assert_eq!(
        engine.stats().reloads,
        64,
        "every reload serialized and counted"
    );
    Arc::try_unwrap(engine)
        .unwrap_or_else(|_| panic!("sole owner"))
        .shutdown();
}
