//! Hot-reload and input-quarantine contracts: a failed reload rolls back
//! to the incumbent with no in-flight disruption, and a bad row never
//! poisons the scores of its batch neighbors.

use std::sync::Arc;
use std::time::Duration;

use lightmirm_core::lr::LrModel;
use lightmirm_core::prelude::*;
use lightmirm_core::trainers::TrainConfig;
use lightmirm_serve::{
    EngineConfig, QuarantineFallback, QuarantinePolicy, ScoreError, ScoringEngine,
};
use loansim::{generate, temporal_split, GeneratorConfig, LoanFrame, ProvinceCatalog};

fn served_world() -> (ModelBundle, LoanFrame, Vec<f64>) {
    let frame = generate(&GeneratorConfig::small(6_000, 53));
    let split = temporal_split(&frame, 2020);
    let mut fe = FeatureExtractorConfig::default();
    fe.gbdt.n_trees = 6;
    let extractor = FeatureExtractor::fit(&split.train, &fe).expect("GBDT trains");
    let names = ProvinceCatalog::standard().names();
    let train = extractor
        .to_env_dataset(&split.train, names.clone(), None)
        .expect("train transform");
    let out = ErmTrainer::new(TrainConfig {
        epochs: 4,
        ..Default::default()
    })
    .fit(&train, None);
    let test = extractor
        .to_env_dataset(&split.test, names, None)
        .expect("test transform");
    let rows = test.all_rows();
    let offline = out.model.predict_rows(&test.x, &rows, &test.env_ids);
    let bundle = ModelBundle::new(
        extractor.gbdt().clone(),
        &out.model,
        BundleMetadata::default(),
    )
    .expect("dimensions match");
    (bundle, split.test, offline)
}

/// A dimension-compatible bundle whose head is all-NaN: structurally
/// valid, behaviorally poisonous — exactly what probe validation exists
/// to catch.
fn nan_head_bundle(template: &ModelBundle) -> ModelBundle {
    let dim = template.extractor.total_leaves();
    let model = TrainedModel::Global(LrModel {
        weights: vec![f64::NAN; dim],
    });
    ModelBundle::new(
        template.extractor.clone(),
        &model,
        BundleMetadata::default(),
    )
    .expect("dimensions match")
}

#[test]
fn failed_reload_rolls_back_with_no_inflight_disruption() {
    let (bundle, stream, offline) = served_world();
    let engine = Arc::new(ScoringEngine::new(
        bundle.clone(),
        EngineConfig {
            max_batch: 32,
            max_wait: Duration::from_micros(200),
            queue_capacity: 1024,
            workers: 2,
            ..EngineConfig::default()
        },
    ));
    let n = 400.min(stream.len());

    // Keep a stream of requests in flight while reloads are attempted.
    let submitter = {
        let engine = Arc::clone(&engine);
        let stream = stream.clone();
        let offline = offline.clone();
        std::thread::spawn(move || {
            for (k, reference) in offline.iter().enumerate().take(n) {
                let scores = engine
                    .score_blocking(stream.row(k).to_vec(), vec![stream.province[k]])
                    .expect("accepted");
                assert_eq!(
                    scores[0], *reference,
                    "in-flight request disturbed at row {k}"
                );
            }
        })
    };

    let probe_f = stream.row(0).to_vec();
    let probe_e = vec![stream.province[0]];
    // Candidate 1: NaN head — probe scores non-finite, must roll back.
    let err = engine
        .reload(nan_head_bundle(&bundle), &probe_f, &probe_e)
        .expect_err("NaN-head candidate must be rejected");
    assert!(matches!(
        err,
        lightmirm_serve::ReloadError::ProbeNonFinite { .. }
    ));
    // Candidate 2: malformed probe.
    let err = engine
        .reload(bundle.clone(), &probe_f[..probe_f.len() - 1], &probe_e)
        .expect_err("short probe rejected");
    assert!(matches!(
        err,
        lightmirm_serve::ReloadError::ProbeMalformed { .. }
    ));
    // Candidate 3: the incumbent itself — valid, swaps in, scores are
    // bit-identical so the submitter cannot tell.
    engine
        .reload(bundle.clone(), &probe_f, &probe_e)
        .expect("identical bundle passes probe");

    submitter.join().expect("submitter clean");
    let stats = engine.stats();
    assert_eq!(stats.reload_rejected, 2);
    assert_eq!(stats.reloads, 1);
    let engine = Arc::into_inner(engine).expect("submitter joined");
    let stats = engine.shutdown();
    assert_eq!(stats.rows_scored as usize, n);
}

#[test]
fn reloaded_bundle_actually_serves_subsequent_requests() {
    let (bundle, stream, offline) = served_world();
    let engine = ScoringEngine::new(bundle.clone(), EngineConfig::default());
    let k = 0;
    let before = engine
        .score_blocking(stream.row(k).to_vec(), vec![stream.province[k]])
        .expect("scored");
    assert_eq!(before[0], offline[k]);

    // A constant-zero head scores sigmoid(0) = 0.5 everywhere: visibly
    // different from the trained head, proving the swap took effect.
    let dim = bundle.extractor.total_leaves();
    let flat = ModelBundle::new(
        bundle.extractor.clone(),
        &TrainedModel::Global(LrModel {
            weights: vec![0.0; dim],
        }),
        BundleMetadata::default(),
    )
    .expect("dimensions match");
    engine
        .reload(flat, stream.row(k), &[stream.province[k]])
        .expect("flat head passes probe");
    let after = engine
        .score_blocking(stream.row(k).to_vec(), vec![stream.province[k]])
        .expect("scored");
    assert_eq!(after[0], 0.5);
    engine.shutdown();
}

#[test]
fn quarantined_rows_error_without_poisoning_batch_neighbors() {
    let (bundle, stream, offline) = served_world();
    let nf = bundle.n_features();
    // One worker and a large coalescing window so the poisoned and the
    // clean request land in the same micro-batch.
    let engine = ScoringEngine::new(
        bundle,
        EngineConfig {
            max_batch: 64,
            max_wait: Duration::from_millis(50),
            queue_capacity: 1024,
            workers: 1,
            ..EngineConfig::default()
        },
    );
    let mut poisoned = stream.row(0).to_vec();
    poisoned[0] = f32::NAN;
    let bad = engine
        .submit(poisoned, vec![stream.province[0]])
        .expect("accepted");
    let mut clean_f = Vec::with_capacity(3 * nf);
    let mut clean_e = Vec::new();
    for k in 1..4 {
        clean_f.extend_from_slice(stream.row(k));
        clean_e.push(stream.province[k]);
    }
    let good = engine.submit(clean_f, clean_e).expect("accepted");

    assert_eq!(
        bad.wait().unwrap_err(),
        ScoreError::Quarantined { rows: vec![0] }
    );
    let scores = good.wait().expect("clean neighbor request scores");
    for (i, k) in (1..4).enumerate() {
        assert_eq!(
            scores[i], offline[k],
            "clean row {k} drifted next to a quarantined neighbor"
        );
    }
    let stats = engine.shutdown();
    assert_eq!(stats.quarantined_rows, 1);
    assert_eq!(stats.rows_scored, 4);
}

#[test]
fn prior_fallback_substitutes_instead_of_erroring() {
    let (bundle, stream, offline) = served_world();
    let engine = ScoringEngine::new(
        bundle,
        EngineConfig {
            quarantine: QuarantinePolicy {
                max_abs: None,
                fallback: QuarantineFallback::PriorScore(0.04),
            },
            ..EngineConfig::default()
        },
    );
    let nf = engine.bundle().n_features();
    let mut features = Vec::with_capacity(2 * nf);
    features.extend_from_slice(stream.row(0));
    features.extend_from_slice(stream.row(1));
    features[2] = f32::INFINITY; // poison row 0
    let p = engine
        .submit(features, vec![stream.province[0], stream.province[1]])
        .expect("accepted");
    let resp = p.wait_detailed().expect("prior fallback answers Ok");
    assert_eq!(resp.quarantined, vec![0]);
    assert_eq!(resp.scores[0], 0.04, "prior substituted");
    assert_eq!(resp.scores[1], offline[1], "clean row untouched");
    engine.shutdown();
}
