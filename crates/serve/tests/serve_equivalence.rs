//! Serve/offline equivalence: the engine's scores must be bit-identical
//! to the offline `TrainedModel::predict_rows` path for any
//! request-to-batch split and any worker count — the serving-path
//! extension of `crates/core/tests/parallel_determinism.rs`.

use std::time::Duration;

use lightmirm_core::prelude::*;
use lightmirm_core::trainers::TrainConfig;
use lightmirm_serve::{EngineConfig, ScoringEngine, SubmitError};
use loansim::{generate, temporal_split, GeneratorConfig, LoanFrame, ProvinceCatalog};

/// Train a small LightMIRM bundle and keep the held-out 2020 stream plus
/// its offline scores for comparison.
fn served_world() -> (ModelBundle, LoanFrame, Vec<f64>) {
    let frame = generate(&GeneratorConfig::small(8_000, 29));
    let split = temporal_split(&frame, 2020);
    let mut fe = FeatureExtractorConfig::default();
    fe.gbdt.n_trees = 8;
    let extractor = FeatureExtractor::fit(&split.train, &fe).expect("GBDT trains");
    let names = ProvinceCatalog::standard().names();
    let train = extractor
        .to_env_dataset(&split.train, names.clone(), None)
        .expect("train transform");
    let out = LightMirmTrainer::new(TrainConfig {
        epochs: 5,
        inner_lr: 0.1,
        outer_lr: 0.3,
        momentum: 0.0,
        ..Default::default()
    })
    .fit(&train, None);

    let test = extractor
        .to_env_dataset(&split.test, names, None)
        .expect("test transform");
    let rows = test.all_rows();
    let offline = out.model.predict_rows(&test.x, &rows, &test.env_ids);

    let bundle = ModelBundle::new(
        extractor.gbdt().clone(),
        &out.model,
        BundleMetadata {
            trainer: "LightMIRM(L=5,g=0.9)".into(),
            seed: 29,
            notes: "serve equivalence test".into(),
        },
    )
    .expect("dimensions match");
    (bundle, split.test, offline)
}

/// Drive the whole stream through an engine as requests of the given row
/// sizes (cycled), preserving order, and return the concatenated scores.
fn scores_through_engine(
    bundle: &ModelBundle,
    stream: &LoanFrame,
    cfg: EngineConfig,
    request_sizes: &[usize],
) -> Vec<f64> {
    let engine = ScoringEngine::new(bundle.clone(), cfg);
    let nf = bundle.n_features();
    let mut pending = Vec::new();
    let mut r = 0usize;
    let mut size_idx = 0usize;
    while r < stream.len() {
        let n = request_sizes[size_idx % request_sizes.len()].min(stream.len() - r);
        size_idx += 1;
        let mut features = Vec::with_capacity(n * nf);
        let mut env_ids = Vec::with_capacity(n);
        for k in r..r + n {
            features.extend_from_slice(stream.row(k));
            env_ids.push(stream.province[k]);
        }
        pending.push(engine.submit(features, env_ids).expect("accepted"));
        r += n;
    }
    let mut scores = Vec::with_capacity(stream.len());
    for p in pending {
        scores.extend(p.wait().expect("scored"));
    }
    let stats = engine.shutdown();
    assert_eq!(stats.rows_scored as usize, stream.len());
    scores
}

#[test]
fn engine_scores_are_bit_identical_to_offline_for_any_split_and_workers() {
    let (bundle, stream, offline) = served_world();
    // Request splits: single rows, odd chunks, chunks straddling
    // max_batch, and the whole stream as one request-too-large-free batch.
    let splits: &[&[usize]] = &[&[1], &[7, 13, 1, 64], &[300], &[1000]];
    for workers in [1, 2, 4] {
        for (i, sizes) in splits.iter().enumerate() {
            let cfg = EngineConfig {
                max_batch: 256,
                max_wait: Duration::from_millis(1),
                queue_capacity: 1 << 20,
                workers,
                ..EngineConfig::default()
            };
            let got = scores_through_engine(&bundle, &stream, cfg, sizes);
            assert_eq!(
                got, offline,
                "scores drifted at workers={workers}, split #{i}"
            );
        }
    }
}

#[test]
fn bundle_round_trip_through_engine_smoke() {
    // The CI smoke contract: save → load → serve must reproduce the
    // offline scores exactly at two worker counts.
    let (bundle, stream, offline) = served_world();
    let reloaded = ModelBundle::from_json(&bundle.to_json()).expect("round trip");
    for workers in [1, 2] {
        let cfg = EngineConfig {
            workers,
            ..EngineConfig::default()
        };
        let got = scores_through_engine(&reloaded, &stream, cfg, &[17]);
        assert_eq!(
            got, offline,
            "round-tripped bundle drifted at {workers} workers"
        );
    }
}

#[test]
fn queue_full_backpressure_and_drain_on_shutdown() {
    let (bundle, stream, offline) = served_world();
    let nf = bundle.n_features();
    // Workers only dispatch at 10_000 queued rows or after 10 s — so
    // submissions pile up deterministically and overflow the bound.
    let engine = ScoringEngine::new(
        bundle,
        EngineConfig {
            max_batch: 10_000,
            max_wait: Duration::from_secs(10),
            queue_capacity: 8,
            workers: 2,
            ..EngineConfig::default()
        },
    );
    let one = |k: usize| (stream.row(k).to_vec(), vec![stream.province[k]]);

    let mut pending = Vec::new();
    for k in 0..8 {
        let (f, e) = one(k);
        pending.push(engine.try_submit(f, e).expect("queue has space"));
    }
    let (f, e) = one(8);
    assert_eq!(engine.try_submit(f, e).unwrap_err(), SubmitError::QueueFull);
    let (f, e) = one(8);
    assert_eq!(
        engine
            .try_submit(vec![0.0; 9 * nf], vec![0; 9])
            .unwrap_err(),
        SubmitError::RequestTooLarge {
            rows: 9,
            capacity: 8
        }
    );
    // Malformed feature slices are rejected before queueing.
    assert!(matches!(
        engine.try_submit(f[..nf - 1].to_vec(), e),
        Err(SubmitError::Malformed { .. })
    ));
    // Zero-row requests answer immediately without occupying the queue.
    assert_eq!(
        engine
            .submit(Vec::new(), Vec::new())
            .unwrap()
            .wait()
            .unwrap(),
        Vec::<f64>::new()
    );

    let stats = engine.stats();
    assert!(stats.rejected_full >= 1);
    assert_eq!(stats.queue_depth_max, 8);

    // Graceful drain: shutdown flushes all 8 queued requests.
    let stats = engine.shutdown();
    assert_eq!(stats.rows_scored, 8);
    for (k, p) in pending.into_iter().enumerate() {
        let scores = p.wait().expect("drained, not dropped");
        assert_eq!(scores.len(), 1);
        assert_eq!(scores[0], offline[k], "drained score differs at row {k}");
    }
    assert!(stats.latency_p99_ns >= stats.latency_p50_ns);
    assert_eq!(stats.requests, 9); // 8 queued + 1 empty
}

#[test]
fn blocking_submit_waits_for_space_instead_of_failing() {
    let (bundle, stream, offline) = served_world();
    // Tiny queue with a fast deadline: blocked submitters make progress
    // as the deadline flushes partial batches.
    let engine = std::sync::Arc::new(ScoringEngine::new(
        bundle,
        EngineConfig {
            max_batch: 4,
            max_wait: Duration::from_micros(200),
            queue_capacity: 4,
            workers: 1,
            ..EngineConfig::default()
        },
    ));
    let n = 200.min(stream.len());
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let engine = std::sync::Arc::clone(&engine);
            let stream = stream.clone();
            std::thread::spawn(move || {
                let mut got = Vec::new();
                for k in (t..n).step_by(4) {
                    let scores = engine
                        .score_blocking(stream.row(k).to_vec(), vec![stream.province[k]])
                        .expect("blocking submit succeeds");
                    got.push((k, scores[0]));
                }
                got
            })
        })
        .collect();
    for h in handles {
        for (k, s) in h.join().expect("submitter thread") {
            assert_eq!(s, offline[k], "score differs at row {k}");
        }
    }
    let stats = engine.stats();
    assert_eq!(stats.rows_scored as usize, n);
    assert!(stats.batch_rows_max <= 4);
}
