//! The sharded front end's correctness battery: routing stability,
//! sharded-vs-single-engine bit-identity on both kernel backends, and
//! seeded MPMC proptests over the lock-free ring.
//!
//! The routing contract under test: the router is a pure function of
//! `(shard count, pinning table)` — the same key routes to the same
//! shard across process restarts, and routes change **only** through
//! explicit resharding or pinning, never as a side effect of traffic,
//! reloads, or time.

use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use lightmirm_core::prelude::*;
use lightmirm_core::simd::{self, Backend};
use lightmirm_core::trainers::TrainConfig;
use lightmirm_serve::ring::MpmcRing;
use lightmirm_serve::{
    EngineConfig, Priority, ShardConfig, ShardRouter, ShardedEngine, SubmitOptions,
};
use loansim::{generate, temporal_split, GeneratorConfig, LoanFrame, ProvinceCatalog};
use proptest::prelude::*;

struct World {
    bundle: ModelBundle,
    stream: LoanFrame,
    offline: Vec<f64>,
}

fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| {
        let frame = generate(&GeneratorConfig::small(6_000, 47));
        let split = temporal_split(&frame, 2020);
        let mut fe = FeatureExtractorConfig::default();
        fe.gbdt.n_trees = 6;
        let extractor = FeatureExtractor::fit(&split.train, &fe).expect("GBDT trains");
        let names = ProvinceCatalog::standard().names();
        let train = extractor
            .to_env_dataset(&split.train, names, None)
            .expect("train transform");
        let out = ErmTrainer::new(TrainConfig {
            epochs: 4,
            ..Default::default()
        })
        .fit(&train, None);
        let bundle = ModelBundle::new(
            extractor.gbdt().clone(),
            &out.model,
            BundleMetadata::default(),
        )
        .expect("dimensions match");
        let stream = split.test;
        let n = stream.len();
        let mut features = Vec::with_capacity(n * bundle.n_features());
        let mut env_ids = Vec::with_capacity(n);
        for k in 0..n {
            features.extend_from_slice(stream.row(k));
            env_ids.push(stream.province[k]);
        }
        let offline = bundle.score_batch(&features, &env_ids);
        World {
            bundle,
            stream,
            offline,
        }
    })
}

// ---------------------------------------------------------------------------
// Routing stability
// ---------------------------------------------------------------------------

#[test]
fn the_same_key_routes_to_the_same_shard_across_restarts() {
    // "Restart" = constructing a fresh router (or front end) from the
    // same configuration. The full route map over the key space must be
    // identical, including with a pinning table.
    let before: Vec<usize> = (0..=u16::MAX)
        .map(|k| ShardRouter::new(5).route(k))
        .collect();
    let after: Vec<usize> = (0..=u16::MAX)
        .map(|k| ShardRouter::new(5).route(k))
        .collect();
    assert_eq!(before, after, "routing must survive a restart");

    let pins: std::collections::BTreeMap<u16, usize> = [(7u16, 0usize), (4000, 3)].into();
    let a = ShardRouter::with_pinning(5, pins.clone());
    let b = ShardRouter::with_pinning(5, pins);
    for k in 0..=u16::MAX {
        assert_eq!(a.route(k), b.route(k));
    }

    // The front end exposes the identical router.
    let w = world();
    let cfg = ShardConfig {
        shards: 5,
        engine: EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        },
        ..ShardConfig::default()
    };
    let engine = ShardedEngine::new(&w.bundle, &cfg);
    for k in (0..=u16::MAX).step_by(97) {
        assert_eq!(engine.router().route(k), ShardRouter::new(5).route(k));
    }
    engine.shutdown();
}

#[test]
fn routes_change_only_on_explicit_resharding_or_pinning() {
    let base = ShardRouter::new(4);
    let snapshot: Vec<usize> = (0..2048).map(|k| base.route(k)).collect();

    // Querying is not a mutation: the map is unchanged after a sweep.
    for _ in 0..3 {
        let again: Vec<usize> = (0..2048).map(|k| base.route(k)).collect();
        assert_eq!(snapshot, again);
    }

    // Resharding to the same count is the identity.
    let same = base.resharded(4);
    for k in 0..2048 {
        assert_eq!(base.route(k), same.route(k));
    }

    // Resharding to a different count is the ONLY implicit route change,
    // and it must actually move some keys (else it isn't resharding).
    let wider = base.resharded(6);
    assert!((0..2048).any(|k| base.route(k) != wider.route(k)));

    // Pinning moves exactly the pinned key.
    let mut pinned = base.resharded(4);
    let key = 1234u16;
    let target = (base.route(key) + 1) % 4;
    pinned.pin(key, target);
    assert_eq!(pinned.route(key), target);
    for k in 0..2048 {
        if k != key {
            assert_eq!(pinned.route(k), base.route(k), "unpinned key {k} moved");
        }
    }
    pinned.unpin(key);
    for k in 0..2048 {
        assert_eq!(pinned.route(k), base.route(k));
    }
}

// ---------------------------------------------------------------------------
// Sharded == single-engine == offline, on both kernel backends
// ---------------------------------------------------------------------------

/// Score the whole stream through a sharded front end as 3-row chunks
/// routed by each chunk's first-row province.
fn scores_through_sharded(w: &World, shards: usize, workers: usize) -> Vec<f64> {
    let engine = ShardedEngine::new(
        &w.bundle,
        &ShardConfig {
            shards,
            engine: EngineConfig {
                max_batch: 64,
                max_wait: Duration::from_micros(200),
                queue_capacity: 1024,
                workers,
                ..EngineConfig::default()
            },
            ..ShardConfig::default()
        },
    );
    let nf = w.bundle.n_features();
    let chunk = 3usize;
    let mut pending = Vec::new();
    let mut r = 0usize;
    while r < w.stream.len() {
        let n = chunk.min(w.stream.len() - r);
        let mut features = Vec::with_capacity(n * nf);
        let mut env_ids = Vec::with_capacity(n);
        for k in r..r + n {
            features.extend_from_slice(w.stream.row(k));
            env_ids.push(w.stream.province[k]);
        }
        let (_, p) = engine
            .submit(
                w.stream.province[r],
                features,
                env_ids,
                SubmitOptions::default(),
            )
            .expect("accepted");
        pending.push(p);
        r += n;
    }
    let scores: Vec<f64> = pending
        .into_iter()
        .flat_map(|p| p.wait().expect("scored"))
        .collect();
    let total: u64 = engine.shutdown().iter().map(|s| s.rows_scored).sum();
    assert_eq!(total as usize, w.stream.len(), "no lost or duplicated rows");
    scores
}

#[test]
fn sharded_scores_are_bit_identical_to_single_engine_on_both_backends() {
    let w = world();
    for backend in [Backend::Simd, Backend::Scalar] {
        simd::force_backend(backend);
        // The single-engine path is a 1-shard front end; the offline
        // reference re-scores under the forced backend.
        let offline = {
            let n = w.stream.len();
            let mut features = Vec::with_capacity(n * w.bundle.n_features());
            let mut env_ids = Vec::with_capacity(n);
            for k in 0..n {
                features.extend_from_slice(w.stream.row(k));
                env_ids.push(w.stream.province[k]);
            }
            w.bundle.score_batch(&features, &env_ids)
        };
        let single = scores_through_sharded(w, 1, 1);
        for (shards, workers) in [(2, 1), (3, 2), (4, 2), (7, 1)] {
            let sharded = scores_through_sharded(w, shards, workers);
            assert_eq!(sharded.len(), offline.len());
            for k in 0..offline.len() {
                assert_eq!(
                    sharded[k].to_bits(),
                    single[k].to_bits(),
                    "row {k} differs between {shards}x{workers} and single engine \
                     on {} backend",
                    backend.name()
                );
                assert_eq!(
                    sharded[k].to_bits(),
                    offline[k].to_bits(),
                    "row {k} drifted from offline on {} backend",
                    backend.name()
                );
            }
        }
    }
    simd::clear_forced_backend();
    // The forced-backend sweep must also agree with the fixture's
    // default-backend offline scores: backends are bit-exact peers.
    let default_again = scores_through_sharded(w, 4, 2);
    for (k, s) in default_again.iter().enumerate() {
        assert_eq!(s.to_bits(), w.offline[k].to_bits());
    }
}

// ---------------------------------------------------------------------------
// Engine-level MPMC: concurrent mixed-priority submits lose nothing
// ---------------------------------------------------------------------------

#[test]
fn concurrent_mixed_priority_submits_across_shards_lose_and_duplicate_nothing() {
    let w = world();
    let engine = Arc::new(ShardedEngine::new(
        &w.bundle,
        &ShardConfig {
            shards: 3,
            engine: EngineConfig {
                max_batch: 32,
                max_wait: Duration::from_micros(100),
                queue_capacity: 256,
                workers: 2,
                ..EngineConfig::default()
            },
            ..ShardConfig::default()
        },
    ));
    let submitters = 4usize;
    let n = w.stream.len().min(2_000);
    let handles: Vec<_> = (0..submitters)
        .map(|t| {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                let w = world();
                let mut checked = 0usize;
                let mut k = t;
                let mut pending = Vec::new();
                while k < n {
                    let opts = SubmitOptions {
                        priority: if k % 3 == 0 {
                            Priority::High
                        } else {
                            Priority::Normal
                        },
                        ..SubmitOptions::default()
                    };
                    let (_, p) = engine
                        .submit(
                            w.stream.province[k],
                            w.stream.row(k).to_vec(),
                            vec![w.stream.province[k]],
                            opts,
                        )
                        .expect("accepted");
                    pending.push((k, p));
                    k += submitters;
                }
                for (k, p) in pending {
                    let scores = p.wait().expect("scored");
                    assert_eq!(scores.len(), 1);
                    assert_eq!(scores[0].to_bits(), w.offline[k].to_bits(), "row {k}");
                    checked += 1;
                }
                checked
            })
        })
        .collect();
    let answered: usize = handles.into_iter().map(|h| h.join().expect("thread")).sum();
    assert_eq!(answered, n, "every submitted request answered exactly once");
    let engine = Arc::into_inner(engine).expect("submitters joined");
    let stats = engine.shutdown();
    let total: u64 = stats.iter().map(|s| s.rows_scored).sum();
    assert_eq!(total as usize, n, "per-shard row counts sum to the stream");
    assert!(
        stats.iter().filter(|s| s.rows_scored > 0).count() > 1,
        "the stream must actually exercise more than one shard"
    );
}

// ---------------------------------------------------------------------------
// Seeded MPMC proptests over the ring itself
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any producer/consumer/capacity schedule: every pushed item is
    /// popped exactly once (multiset equality), and each producer's
    /// items emerge in that producer's push order when reassembled.
    #[test]
    fn ring_loses_and_duplicates_nothing_under_random_schedules(
        producers in 1usize..5,
        consumers in 1usize..4,
        per_producer in 1usize..400,
        capacity in 1usize..700,
    ) {
        let ring = Arc::new(MpmcRing::<(usize, usize)>::with_capacity(capacity));
        let total = producers * per_producer;
        let popped = Arc::new(Mutex::new(Vec::with_capacity(total)));
        let remaining = Arc::new(std::sync::atomic::AtomicUsize::new(total));
        std::thread::scope(|s| {
            for p in 0..producers {
                let ring = Arc::clone(&ring);
                s.spawn(move || {
                    for i in 0..per_producer {
                        let mut item = (p, i);
                        loop {
                            match ring.push(item) {
                                Ok(()) => break,
                                Err(back) => {
                                    item = back;
                                    std::thread::yield_now();
                                }
                            }
                        }
                    }
                });
            }
            for _ in 0..consumers {
                let ring = Arc::clone(&ring);
                let popped = Arc::clone(&popped);
                let remaining = Arc::clone(&remaining);
                s.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        match ring.pop() {
                            Some(item) => {
                                local.push(item);
                                remaining.fetch_sub(1, std::sync::atomic::Ordering::Relaxed);
                            }
                            None => {
                                if remaining.load(std::sync::atomic::Ordering::Relaxed) == 0 {
                                    break;
                                }
                                std::thread::yield_now();
                            }
                        }
                    }
                    popped.lock().unwrap().extend(local);
                });
            }
        });
        let got = popped.lock().unwrap();
        prop_assert_eq!(got.len(), total);
        // Multiset equality: sort and compare against the full grid.
        let mut sorted = got.clone();
        sorted.sort_unstable();
        let expect: Vec<(usize, usize)> = (0..producers)
            .flat_map(|p| (0..per_producer).map(move |i| (p, i)))
            .collect();
        prop_assert_eq!(sorted, expect);
        prop_assert!(ring.is_empty());
    }

    /// Items of interleaved priority classes pushed by one producer and
    /// drained by one consumer stay FIFO within every class — the
    /// queue-order guarantee a shard gives each priority class.
    #[test]
    fn ring_is_fifo_per_priority_class_within_a_shard(
        classes in proptest::collection::vec(0u8..3, 0..500),
    ) {
        let ring = MpmcRing::<(u8, usize)>::with_capacity(classes.len().max(1));
        let mut seqs = [0usize; 3];
        for &c in &classes {
            let seq = seqs[c as usize];
            seqs[c as usize] += 1;
            ring.push((c, seq)).expect("capacity covers the trace");
        }
        let mut next_expected = [0usize; 3];
        let mut drained = 0usize;
        while let Some((c, seq)) = ring.pop() {
            prop_assert_eq!(
                seq,
                next_expected[c as usize],
                "class {} replied out of order",
                c
            );
            next_expected[c as usize] += 1;
            drained += 1;
        }
        prop_assert_eq!(drained, classes.len());
    }
}
