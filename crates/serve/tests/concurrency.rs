//! Concurrency contract tests: under contention — many submitters, tiny
//! capacity, shutdown racing submission — every *accepted* request is
//! answered exactly once with its correct scores or a structured error,
//! and every rejection is one of the documented [`SubmitError`]s.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use lightmirm_core::prelude::*;
use lightmirm_core::trainers::TrainConfig;
use lightmirm_serve::{EngineConfig, Priority, ScoringEngine, SubmitError, SubmitOptions};
use loansim::{generate, temporal_split, GeneratorConfig, LoanFrame, ProvinceCatalog};

/// Train a small bundle and keep the held-out stream plus its offline
/// scores (the correctness reference for every concurrent path).
fn served_world() -> (ModelBundle, LoanFrame, Vec<f64>) {
    let frame = generate(&GeneratorConfig::small(6_000, 41));
    let split = temporal_split(&frame, 2020);
    let mut fe = FeatureExtractorConfig::default();
    fe.gbdt.n_trees = 6;
    let extractor = FeatureExtractor::fit(&split.train, &fe).expect("GBDT trains");
    let names = ProvinceCatalog::standard().names();
    let train = extractor
        .to_env_dataset(&split.train, names.clone(), None)
        .expect("train transform");
    let out = ErmTrainer::new(TrainConfig {
        epochs: 4,
        ..Default::default()
    })
    .fit(&train, None);
    let test = extractor
        .to_env_dataset(&split.test, names, None)
        .expect("test transform");
    let rows = test.all_rows();
    let offline = out.model.predict_rows(&test.x, &rows, &test.env_ids);
    let bundle = ModelBundle::new(
        extractor.gbdt().clone(),
        &out.model,
        BundleMetadata::default(),
    )
    .expect("dimensions match");
    (bundle, split.test, offline)
}

#[test]
fn try_submit_contention_answers_every_accepted_request_exactly_once() {
    let (bundle, stream, offline) = served_world();
    // Tiny queue + slow dispatch threshold: most try_submits bounce.
    let engine = Arc::new(ScoringEngine::new(
        bundle,
        EngineConfig {
            max_batch: 4,
            max_wait: Duration::from_micros(100),
            queue_capacity: 6,
            workers: 2,
            ..EngineConfig::default()
        },
    ));
    let n = 400.min(stream.len());
    let accepted = Arc::new(AtomicUsize::new(0));
    let full = Arc::new(AtomicUsize::new(0));
    let answered = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..8)
        .map(|t| {
            let engine = Arc::clone(&engine);
            let stream = stream.clone();
            let offline = offline.clone();
            let (accepted, full, answered) = (
                Arc::clone(&accepted),
                Arc::clone(&full),
                Arc::clone(&answered),
            );
            std::thread::spawn(move || {
                for k in (t..n).step_by(8) {
                    match engine.try_submit(stream.row(k).to_vec(), vec![stream.province[k]]) {
                        Ok(p) => {
                            accepted.fetch_add(1, Ordering::SeqCst);
                            let scores = p.wait().expect("accepted request is answered");
                            assert_eq!(scores.len(), 1);
                            assert_eq!(scores[0], offline[k], "wrong score for row {k}");
                            answered.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(SubmitError::QueueFull) => {
                            full.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(e) => panic!("unexpected rejection: {e}"),
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("submitter");
    }
    let engine = Arc::into_inner(engine).expect("all submitters joined");
    let stats = engine.shutdown();
    assert_eq!(
        accepted.load(Ordering::SeqCst),
        answered.load(Ordering::SeqCst)
    );
    assert_eq!(stats.rows_scored as usize, accepted.load(Ordering::SeqCst));
    assert_eq!(stats.rejected_full as usize, full.load(Ordering::SeqCst));
    assert_eq!(
        accepted.load(Ordering::SeqCst) + full.load(Ordering::SeqCst),
        n,
        "every try_submit resolved to accept or QueueFull"
    );
}

#[test]
fn oversized_requests_are_rejected_under_concurrency_without_wedging() {
    let (bundle, stream, offline) = served_world();
    let nf = bundle.n_features();
    let engine = Arc::new(ScoringEngine::new(
        bundle,
        EngineConfig {
            max_batch: 8,
            max_wait: Duration::from_micros(100),
            queue_capacity: 8,
            workers: 2,
            ..EngineConfig::default()
        },
    ));
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let engine = Arc::clone(&engine);
            let stream = stream.clone();
            let offline = offline.clone();
            std::thread::spawn(move || {
                for i in 0..50 {
                    // Interleave poison-pill oversized requests with real ones.
                    let err = engine
                        .try_submit(vec![0.0; 9 * nf], vec![0; 9])
                        .expect_err("9 rows can never fit an 8-row queue");
                    assert_eq!(
                        err,
                        SubmitError::RequestTooLarge {
                            rows: 9,
                            capacity: 8
                        }
                    );
                    let k = (t * 50 + i) % stream.len();
                    let scores = engine
                        .score_blocking(stream.row(k).to_vec(), vec![stream.province[k]])
                        .expect("well-formed request succeeds");
                    assert_eq!(scores[0], offline[k]);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("submitter");
    }
}

#[test]
fn shutdown_vs_submit_race_never_loses_an_accepted_request() {
    let (bundle, stream, offline) = served_world();
    let engine = Arc::new(ScoringEngine::new(
        bundle,
        EngineConfig {
            max_batch: 16,
            max_wait: Duration::from_micros(50),
            queue_capacity: 64,
            workers: 3,
            ..EngineConfig::default()
        },
    ));
    let accepted = Arc::new(AtomicUsize::new(0));
    let answered = Arc::new(AtomicUsize::new(0));
    let rejected_shutdown = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..6)
        .map(|t| {
            let engine = Arc::clone(&engine);
            let stream = stream.clone();
            let offline = offline.clone();
            let (accepted, answered, rejected) = (
                Arc::clone(&accepted),
                Arc::clone(&answered),
                Arc::clone(&rejected_shutdown),
            );
            std::thread::spawn(move || {
                for k in (t..600).step_by(6) {
                    let k = k % stream.len();
                    match engine.try_submit(stream.row(k).to_vec(), vec![stream.province[k]]) {
                        Ok(p) => {
                            accepted.fetch_add(1, Ordering::SeqCst);
                            // Drain guarantee: accepted before/during
                            // shutdown still answers with real scores.
                            let scores = p.wait().expect("accepted requests drain");
                            assert_eq!(scores[0], offline[k]);
                            answered.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(SubmitError::ShuttingDown) => {
                            rejected.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(SubmitError::QueueFull) => {}
                        Err(e) => panic!("unexpected rejection: {e}"),
                    }
                }
            })
        })
        .collect();
    // Initiate the drain while submitters are mid-flight: from here on
    // submissions race the shutdown flag for real.
    std::thread::sleep(Duration::from_millis(2));
    engine.begin_shutdown();
    for h in handles {
        h.join().expect("submitter");
    }
    let engine = Arc::into_inner(engine).expect("submitters joined");
    let stats = engine.shutdown();
    assert_eq!(
        accepted.load(Ordering::SeqCst),
        answered.load(Ordering::SeqCst),
        "every accepted request answered exactly once"
    );
    assert_eq!(stats.rows_scored as usize, accepted.load(Ordering::SeqCst));
    assert_eq!(
        stats.requests as usize,
        accepted.load(Ordering::SeqCst),
        "rejected submissions never count as requests"
    );
    // The race window is wide (600 submissions straddling the flag);
    // both outcomes must have occurred for the test to mean anything.
    assert!(
        rejected_shutdown.load(Ordering::SeqCst) > 0 || accepted.load(Ordering::SeqCst) == 600,
        "shutdown flag never observed"
    );
}

#[test]
fn low_priority_traffic_sheds_at_the_watermark() {
    let (bundle, stream, _) = served_world();
    // Dispatch threshold unreachable: submissions pile up deterministically.
    let engine = ScoringEngine::new(
        bundle,
        EngineConfig {
            max_batch: 10_000,
            max_wait: Duration::from_secs(10),
            queue_capacity: 8,
            workers: 1,
            shed_watermark: 0.5,
            ..EngineConfig::default()
        },
    );
    let one = |k: usize| (stream.row(k).to_vec(), vec![stream.province[k]]);
    let low = SubmitOptions {
        priority: Priority::Low,
        ..SubmitOptions::default()
    };

    // Fill to the watermark (4 of 8 rows) with low-priority traffic.
    let mut pending = Vec::new();
    for k in 0..4 {
        let (f, e) = one(k);
        pending.push(engine.try_submit_with(f, e, low).expect("below watermark"));
    }
    // Low sheds at the watermark; normal traffic still fits.
    let (f, e) = one(4);
    assert_eq!(
        engine.try_submit_with(f, e, low).unwrap_err(),
        SubmitError::Shed
    );
    let (f, e) = one(4);
    pending.push(engine.try_submit(f, e).expect("normal traffic unaffected"));
    // Blocking low-priority submits shed too (they must not block).
    let (f, e) = one(5);
    assert_eq!(
        engine.submit_with(f, e, low).unwrap_err(),
        SubmitError::Shed
    );
    // High priority also keeps flowing up to the hard bound.
    let (f, e) = one(5);
    let high = SubmitOptions {
        priority: Priority::High,
        ..SubmitOptions::default()
    };
    pending.push(engine.try_submit_with(f, e, high).expect("high passes"));

    let stats = engine.stats();
    assert_eq!(stats.shed_low_priority, 2);
    let stats = engine.shutdown();
    assert_eq!(stats.rows_scored, 6);
    for p in pending {
        assert_eq!(p.wait().expect("drained").len(), 1);
    }
}

#[test]
fn expired_only_batches_answer_deadline_exceeded() {
    let (bundle, stream, offline) = served_world();
    // One worker, dispatch only on max_wait: a zero deadline is always
    // expired by dispatch time.
    let engine = ScoringEngine::new(
        bundle,
        EngineConfig {
            max_batch: 10_000,
            max_wait: Duration::from_millis(1),
            queue_capacity: 64,
            workers: 1,
            ..EngineConfig::default()
        },
    );
    let dead = SubmitOptions {
        deadline: Some(Duration::ZERO),
        ..SubmitOptions::default()
    };
    let p = engine
        .submit_with(stream.row(0).to_vec(), vec![stream.province[0]], dead)
        .expect("accepted");
    assert_eq!(
        p.wait().unwrap_err(),
        lightmirm_serve::ScoreError::DeadlineExceeded
    );
    let stats = engine.stats();
    assert_eq!(stats.expired, 1);
    // A generous deadline scores normally.
    let ok = SubmitOptions {
        deadline: Some(Duration::from_secs(60)),
        ..SubmitOptions::default()
    };
    let p = engine
        .submit_with(stream.row(0).to_vec(), vec![stream.province[0]], ok)
        .expect("accepted");
    assert_eq!(p.wait().expect("scored"), vec![offline[0]]);
    engine.shutdown();
}
