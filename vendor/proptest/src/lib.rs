//! Offline stand-in for `proptest`.
//!
//! The build environment has no registry access, so the workspace vendors
//! the surface it uses: the [`proptest!`] macro with `pat in strategy`
//! arguments and an optional `#![proptest_config(...)]` header, range and
//! `collection::vec` strategies, `prop_map`, and the `prop_assert*`
//! macros. Cases are generated from a deterministic per-test RNG (seeded
//! from the test name and case index) rather than true entropy, and there
//! is no shrinking: a failing case panics with its inputs via the normal
//! assert message, which is enough for the repo's property tests.

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic SplitMix64 generator used to drive strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    #[must_use]
    pub fn for_case(test_name: &str, case: u64) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        // Multiply-shift; bias is < bound / 2^64 and irrelevant for tests.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// A generator of values for one `pat in strategy` slot.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
    {
        MapStrategy { inner: self, f }
    }

    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: impl Into<String>,
        f: F,
    ) -> FilterStrategy<Self, F>
    where
        Self: Sized,
    {
        FilterStrategy {
            inner: self,
            reason: reason.into(),
            f,
        }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for MapStrategy<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_filter`]: regenerates until the predicate
/// accepts (bounded retries, like real proptest's local rejections).
pub struct FilterStrategy<S, F> {
    inner: S,
    reason: String,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for FilterStrategy<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let candidate = self.inner.generate(rng);
            if (self.f)(&candidate) {
                return candidate;
            }
        }
        panic!("prop_filter exhausted retries: {}", self.reason);
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap,
                    clippy::cast_sign_loss, clippy::cast_lossless)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = if span > u128::from(u64::MAX) {
                    u128::from(rng.next_u64())
                } else {
                    u128::from(rng.below(span as u64))
                };
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap,
                    clippy::cast_sign_loss, clippy::cast_lossless)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = if span > u128::from(u64::MAX) {
                    u128::from(rng.next_u64())
                } else {
                    u128::from(rng.below(span as u64))
                };
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

/// `Just`-style constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

pub mod collection {
    use super::{Strategy, TestRng};

    /// Lengths accepted by [`vec`]: a fixed size or a range of sizes.
    pub trait SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        #[allow(clippy::cast_possible_truncation)]
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        #[allow(clippy::cast_possible_truncation)]
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.start() + rng.below((self.end() - self.start() + 1) as u64) as usize
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy producing `BTreeSet`s. The size bound is a target: like
    /// real proptest, duplicate draws are retried a bounded number of
    /// times, so the set may come up slightly short of the drawn size.
    pub struct BTreeSetStrategy<S, R> {
        element: S,
        size: R,
    }

    pub fn btree_set<S: Strategy, R: SizeRange>(element: S, size: R) -> BTreeSetStrategy<S, R>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for BTreeSetStrategy<S, R>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut set = std::collections::BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < target * 20 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

pub mod prelude {
    pub use super::collection;
    pub use super::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Assertion macros: plain asserts (no shrink machinery to feed).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Property-test entry point: generates `cases` inputs per test from a
/// deterministic RNG and runs the body for each.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                let __strategies = ($($strategy,)+);
                for __case in 0..u64::from(__config.cases) {
                    let mut __rng = $crate::TestRng::for_case(stringify!($name), __case);
                    let ($($pat,)+) =
                        $crate::Strategy::generate(&__strategies, &mut __rng);
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -2.0f64..2.0, b in 0u8..=1) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            prop_assert!(b <= 1);
        }

        #[test]
        fn vec_sizes_and_map(v in collection::vec(0.0f64..1.0, 5..9),
                             (n, m) in (1usize..4, 1usize..4).prop_map(|(a, b)| (a, a + b))) {
            prop_assert!(v.len() >= 5 && v.len() < 9);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
            prop_assert!(m > n);
        }
    }

    #[test]
    fn deterministic_per_name_and_case() {
        let mut a = super::TestRng::for_case("t", 3);
        let mut b = super::TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let c = super::TestRng::for_case("t", 4);
        assert_ne!(a.state, c.state);
    }
}
