//! Offline stand-in for `serde_derive`.
//!
//! Generates impls of the vendored `serde::Serialize` / `serde::Deserialize`
//! Value-tree traits. Because the registry (and thus `syn`/`quote`) is
//! unavailable, the item is parsed directly from the `proc_macro` token
//! stream and the impl is emitted as a source string.
//!
//! Supported shapes — the ones the workspace uses:
//! - structs with named fields
//! - enums with unit variants (incl. explicit discriminants, which JSON
//!   representation ignores, as real serde does), newtype/tuple variants,
//!   and struct variants (externally tagged, like real serde's default)
//!
//! Unsupported (panics with a clear message): generics, tuple structs,
//! `#[serde(...)]` attributes.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

#[derive(Debug)]
struct Item {
    name: String,
    kind: Kind,
}

#[derive(Debug)]
enum Kind {
    /// Named-field struct: field identifiers in declaration order.
    Struct(Vec<String>),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: Shape,
}

#[derive(Debug)]
enum Shape {
    Unit,
    /// Tuple variant with N fields.
    Tuple(usize),
    Struct(Vec<String>),
}

fn ident_of(t: &TokenTree) -> Option<String> {
    match t {
        TokenTree::Ident(id) => Some(id.to_string()),
        _ => None,
    }
}

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

/// Advance past `#[...]` attributes and an optional `pub` / `pub(...)`.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        if i < tokens.len() && is_punct(&tokens[i], '#') {
            i += 2; // '#' then the bracket group
        } else {
            break;
        }
    }
    if i < tokens.len() && ident_of(&tokens[i]).as_deref() == Some("pub") {
        i += 1;
        if i < tokens.len() {
            if let TokenTree::Group(g) = &tokens[i] {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Skip tokens until a comma at angle-bracket depth zero; returns the
/// index just past that comma (or `tokens.len()`).
fn skip_past_comma(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut depth: i64 = 0;
    while i < tokens.len() {
        if is_punct(&tokens[i], '<') {
            depth += 1;
        } else if is_punct(&tokens[i], '>') {
            depth -= 1;
        } else if is_punct(&tokens[i], ',') && depth == 0 {
            return i + 1;
        }
        i += 1;
    }
    i
}

fn parse_named_fields(group: &Group, context: &str) -> Vec<String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = ident_of(&tokens[i])
            .unwrap_or_else(|| panic!("{context}: expected field name, got {:?}", tokens[i]));
        i += 1;
        assert!(
            i < tokens.len() && is_punct(&tokens[i], ':'),
            "{context}: expected `:` after field `{name}`"
        );
        i = skip_past_comma(&tokens, i + 1);
        fields.push(name);
    }
    fields
}

fn count_tuple_fields(group: &Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut n = 0;
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        i = skip_past_comma(&tokens, i);
        n += 1;
    }
    n
}

fn parse_variants(group: &Group, context: &str) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = ident_of(&tokens[i])
            .unwrap_or_else(|| panic!("{context}: expected variant name, got {:?}", tokens[i]));
        i += 1;
        let mut shape = Shape::Unit;
        if i < tokens.len() {
            if let TokenTree::Group(g) = &tokens[i] {
                shape = match g.delimiter() {
                    Delimiter::Parenthesis => Shape::Tuple(count_tuple_fields(g)),
                    Delimiter::Brace => {
                        Shape::Struct(parse_named_fields(g, &format!("{context}::{name}")))
                    }
                    other => panic!("{context}::{name}: unsupported delimiter {other:?}"),
                };
                i += 1;
            }
        }
        // Skip an optional `= <discriminant expr>` and the trailing comma.
        // JSON uses variant names, so discriminants are irrelevant here
        // (matching real serde's default behavior).
        i = skip_past_comma(&tokens, i);
        variants.push(Variant { name, shape });
    }
    variants
}

fn parse_item(input: TokenStream, trait_name: &str) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let kw = ident_of(&tokens[i])
        .unwrap_or_else(|| panic!("derive({trait_name}): expected struct/enum keyword"));
    i += 1;
    let name =
        ident_of(&tokens[i]).unwrap_or_else(|| panic!("derive({trait_name}): expected type name"));
    i += 1;
    assert!(
        !is_punct(&tokens[i], '<'),
        "derive({trait_name}) on `{name}`: generic types are not supported by the vendored serde"
    );
    let body = match &tokens[i] {
        TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => g,
        TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
            panic!("derive({trait_name}) on `{name}`: tuple structs are not supported")
        }
        other => panic!("derive({trait_name}) on `{name}`: expected body, got {other:?}"),
    };
    let kind = match kw.as_str() {
        "struct" => Kind::Struct(parse_named_fields(body, &name)),
        "enum" => Kind::Enum(parse_variants(body, &name)),
        other => panic!("derive({trait_name}): unsupported item kind `{other}`"),
    };
    Item { name, kind }
}

// ---- Serialize codegen -----------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(fields) => {
            let mut s = String::from("let mut __map = ::serde::value::Map::new();\n");
            for f in fields {
                s.push_str(&format!(
                    "__map.insert(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}));\n"
                ));
            }
            s.push_str("::serde::value::Value::Object(__map)");
            s
        }
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "Self::{vn} => ::serde::value::Value::String(\"{vn}\".to_string()),\n"
                    )),
                    Shape::Tuple(1) => arms.push_str(&format!(
                        "Self::{vn}(__f0) => {{\n\
                         let mut __map = ::serde::value::Map::new();\n\
                         __map.insert(\"{vn}\".to_string(), ::serde::Serialize::to_value(__f0));\n\
                         ::serde::value::Value::Object(__map)\n}}\n"
                    )),
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "Self::{vn}({}) => {{\n\
                             let mut __map = ::serde::value::Map::new();\n\
                             __map.insert(\"{vn}\".to_string(), \
                             ::serde::value::Value::Array(vec![{}]));\n\
                             ::serde::value::Value::Object(__map)\n}}\n",
                            binds.join(", "),
                            elems.join(", ")
                        ));
                    }
                    Shape::Struct(fields) => {
                        let binds = fields.join(", ");
                        let mut inner =
                            String::from("let mut __inner = ::serde::value::Map::new();\n");
                        for f in fields {
                            inner.push_str(&format!(
                                "__inner.insert(\"{f}\".to_string(), \
                                 ::serde::Serialize::to_value({f}));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "Self::{vn} {{ {binds} }} => {{\n{inner}\
                             let mut __map = ::serde::value::Map::new();\n\
                             __map.insert(\"{vn}\".to_string(), \
                             ::serde::value::Value::Object(__inner));\n\
                             ::serde::value::Value::Object(__map)\n}}\n"
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::value::Value {{\n{body}\n}}\n}}\n"
    )
}

// ---- Deserialize codegen ---------------------------------------------

fn gen_struct_fields_from_map(ty: &str, path: &str, fields: &[String], map_var: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_value(::serde::__private::field({map_var}, \
                 \"{f}\")).map_err(|e| ::serde::__private::err_context(\"{ty}\", \"{f}\", e))?"
            )
        })
        .collect();
    format!("{path} {{ {} }}", inits.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(fields) if fields.is_empty() => {
            format!("::serde::__private::as_object(__v, \"{name}\")?;\nOk(Self {{}})")
        }
        Kind::Struct(fields) => {
            let build = gen_struct_fields_from_map(name, "Self", fields, "__obj");
            format!(
                "let __obj = ::serde::__private::as_object(__v, \"{name}\")?;\n\
                 Ok({build})"
            )
        }
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => return Ok(Self::{vn}),\n"));
                    }
                    Shape::Tuple(1) => payload_arms.push_str(&format!(
                        "if let Some(__payload) = __obj.get(\"{vn}\") {{\n\
                         return Ok(Self::{vn}(::serde::Deserialize::from_value(__payload)\
                         .map_err(|e| ::serde::__private::err_context(\"{name}\", \"{vn}\", e))?));\n\
                         }}\n"
                    )),
                    Shape::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|k| {
                                format!(
                                    "::serde::Deserialize::from_value(&__arr[{k}])\
                                     .map_err(|e| ::serde::__private::err_context(\
                                     \"{name}\", \"{vn}\", e))?"
                                )
                            })
                            .collect();
                        payload_arms.push_str(&format!(
                            "if let Some(__payload) = __obj.get(\"{vn}\") {{\n\
                             let __arr = __payload.as_array().filter(|a| a.len() == {n})\
                             .ok_or_else(|| ::serde::DeError(format!(\
                             \"{name}::{vn}: expected {n}-element array, got {{:?}}\", \
                             __payload)))?;\n\
                             return Ok(Self::{vn}({}));\n}}\n",
                            elems.join(", ")
                        ));
                    }
                    Shape::Struct(fields) => {
                        let build = gen_struct_fields_from_map(
                            name,
                            &format!("Self::{vn}"),
                            fields,
                            "__inner",
                        );
                        payload_arms.push_str(&format!(
                            "if let Some(__payload) = __obj.get(\"{vn}\") {{\n\
                             let __inner = ::serde::__private::as_object(__payload, \
                             \"{name}::{vn}\")?;\n\
                             return Ok({build});\n}}\n"
                        ));
                    }
                }
            }
            let payload_block = if payload_arms.is_empty() {
                String::new()
            } else {
                format!("if let Some(__obj) = __v.as_object() {{\n{payload_arms}}}\n")
            };
            let unit_block = if unit_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "if let Some(__s) = __v.as_str() {{\n\
                     match __s {{\n{unit_arms}\
                     _ => return Err(::serde::__private::unknown_variant(\"{name}\", __v)),\n\
                     }}\n}}\n"
                )
            };
            format!(
                "{unit_block}{payload_block}\
                 Err(::serde::__private::unknown_variant(\"{name}\", __v))"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::value::Value) \
         -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}\n"
    )
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input, "Serialize");
    gen_serialize(&item)
        .parse()
        .expect("serde_derive stand-in generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input, "Deserialize");
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive stand-in generated invalid Deserialize impl")
}
