//! Offline stand-in for `serde`.
//!
//! The build environment has no registry access, so the workspace vendors
//! a Value-tree serialization core: [`Serialize`] lowers a type to a
//! [`value::Value`] and [`Deserialize`] rebuilds it from one. The derive
//! macros come from the vendored `serde_derive` and target exactly these
//! traits. `serde_json` (also vendored) renders and parses the same
//! `Value` type, so the familiar `to_string`/`from_str` round-trips work.
//!
//! Field and map ordering is insertion order (declaration order for
//! derived structs), matching serde_json's `preserve_order` behavior.

pub use serde_derive::{Deserialize, Serialize};

pub mod value {
    /// Insertion-ordered string-keyed map.
    #[derive(Debug, Clone, Default, PartialEq)]
    pub struct Map {
        entries: Vec<(String, Value)>,
    }

    impl Map {
        #[must_use]
        pub fn new() -> Self {
            Self::default()
        }

        pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
            for (k, v) in &mut self.entries {
                if *k == key {
                    return Some(std::mem::replace(v, value));
                }
            }
            self.entries.push((key, value));
            None
        }

        #[must_use]
        pub fn get(&self, key: &str) -> Option<&Value> {
            self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
        }

        #[must_use]
        pub fn contains_key(&self, key: &str) -> bool {
            self.get(key).is_some()
        }

        #[must_use]
        pub fn len(&self) -> usize {
            self.entries.len()
        }

        #[must_use]
        pub fn is_empty(&self) -> bool {
            self.entries.is_empty()
        }

        pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
            self.entries.iter().map(|(k, v)| (k, v))
        }

        #[must_use]
        pub fn keys(&self) -> Vec<&String> {
            self.entries.iter().map(|(k, _)| k).collect()
        }
    }

    impl FromIterator<(String, Value)> for Map {
        fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
            let mut map = Map::new();
            for (k, v) in iter {
                map.insert(k, v);
            }
            map
        }
    }

    /// A JSON-shaped value tree. Integers keep their signedness so u64/i64
    /// round-trip losslessly; floats round-trip via shortest decimal form.
    #[derive(Debug, Clone, Default, PartialEq)]
    pub enum Value {
        #[default]
        Null,
        Bool(bool),
        Int(i64),
        UInt(u64),
        Float(f64),
        String(String),
        Array(Vec<Value>),
        Object(Map),
    }

    pub(crate) static NULL: Value = Value::Null;

    impl Value {
        #[must_use]
        pub fn is_null(&self) -> bool {
            matches!(self, Value::Null)
        }

        #[must_use]
        pub fn as_bool(&self) -> Option<bool> {
            match self {
                Value::Bool(b) => Some(*b),
                _ => None,
            }
        }

        #[must_use]
        pub fn as_i64(&self) -> Option<i64> {
            match self {
                Value::Int(i) => Some(*i),
                Value::UInt(u) => i64::try_from(*u).ok(),
                _ => None,
            }
        }

        #[must_use]
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::UInt(u) => Some(*u),
                Value::Int(i) => u64::try_from(*i).ok(),
                _ => None,
            }
        }

        #[must_use]
        #[allow(clippy::cast_precision_loss)]
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Float(f) => Some(*f),
                Value::Int(i) => Some(*i as f64),
                Value::UInt(u) => Some(*u as f64),
                _ => None,
            }
        }

        #[must_use]
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::String(s) => Some(s),
                _ => None,
            }
        }

        #[must_use]
        pub fn as_array(&self) -> Option<&Vec<Value>> {
            match self {
                Value::Array(a) => Some(a),
                _ => None,
            }
        }

        #[must_use]
        pub fn as_object(&self) -> Option<&Map> {
            match self {
                Value::Object(m) => Some(m),
                _ => None,
            }
        }

        /// Object-key or array-index lookup, `None` on mismatch.
        #[must_use]
        pub fn get<I: super::ValueIndex>(&self, index: I) -> Option<&Value> {
            index.index_into(self)
        }
    }

    impl std::fmt::Display for Value {
        /// Compact JSON, matching real serde_json's `Display` for `Value`.
        /// Floats use shortest-roundtrip form with a `.0` suffix for
        /// integral values; non-finite floats render as `null`.
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                Value::Null => f.write_str("null"),
                Value::Bool(b) => f.write_str(if *b { "true" } else { "false" }),
                Value::Int(i) => write!(f, "{i}"),
                Value::UInt(u) => write!(f, "{u}"),
                Value::Float(x) => {
                    if !x.is_finite() {
                        f.write_str("null")
                    } else if *x == x.trunc() && x.abs() < 1e16 {
                        write!(f, "{x:.1}")
                    } else {
                        write!(f, "{x}")
                    }
                }
                Value::String(s) => write_json_escaped(f, s),
                Value::Array(items) => {
                    f.write_str("[")?;
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            f.write_str(",")?;
                        }
                        write!(f, "{item}")?;
                    }
                    f.write_str("]")
                }
                Value::Object(map) => {
                    f.write_str("{")?;
                    for (i, (k, v)) in map.iter().enumerate() {
                        if i > 0 {
                            f.write_str(",")?;
                        }
                        write_json_escaped(f, k)?;
                        f.write_str(":")?;
                        write!(f, "{v}")?;
                    }
                    f.write_str("}")
                }
            }
        }
    }

    pub(crate) fn write_json_escaped(f: &mut std::fmt::Formatter<'_>, s: &str) -> std::fmt::Result {
        f.write_str("\"")?;
        for c in s.chars() {
            match c {
                '"' => f.write_str("\\\"")?,
                '\\' => f.write_str("\\\\")?,
                '\n' => f.write_str("\\n")?,
                '\r' => f.write_str("\\r")?,
                '\t' => f.write_str("\\t")?,
                c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                c => write!(f, "{c}")?,
            }
        }
        f.write_str("\"")
    }

    impl std::ops::Index<&str> for Value {
        type Output = Value;
        fn index(&self, key: &str) -> &Value {
            self.get(key).unwrap_or(&NULL)
        }
    }

    impl std::ops::Index<usize> for Value {
        type Output = Value;
        fn index(&self, idx: usize) -> &Value {
            self.get(idx).unwrap_or(&NULL)
        }
    }

    macro_rules! impl_value_eq_int {
        ($($t:ty),*) => {$(
            impl PartialEq<$t> for Value {
                fn eq(&self, other: &$t) -> bool {
                    match self {
                        Value::Int(i) => i128::from(*i) == i128::from(*other),
                        Value::UInt(u) => i128::from(*u) == i128::from(*other),
                        _ => false,
                    }
                }
            }
        )*};
    }
    impl_value_eq_int!(i8, i16, i32, i64, u8, u16, u32, u64);

    impl PartialEq<f64> for Value {
        fn eq(&self, other: &f64) -> bool {
            self.as_f64() == Some(*other)
        }
    }

    impl PartialEq<&str> for Value {
        fn eq(&self, other: &&str) -> bool {
            self.as_str() == Some(*other)
        }
    }

    impl PartialEq<bool> for Value {
        fn eq(&self, other: &bool) -> bool {
            self.as_bool() == Some(*other)
        }
    }
}

use value::{Map, Value};

/// Object-key / array-index abstraction for [`Value::get`].
pub trait ValueIndex {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value>;
}

impl ValueIndex for &str {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        match v {
            Value::Object(m) => m.get(self),
            _ => None,
        }
    }
}

impl ValueIndex for String {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        self.as_str().index_into(v)
    }
}

impl ValueIndex for usize {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        match v {
            Value::Array(a) => a.get(*self),
            _ => None,
        }
    }
}

/// Deserialization failure: a human-readable path + expectation message.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Lower `self` into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// # Errors
    ///
    /// Returns [`DeError`] when the value's shape doesn't match `Self`.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---- Serialize impls -------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

// Non-negative integers normalize to `UInt` (as real serde_json stores
// them) so values built in code compare equal to values parsed from text.
macro_rules! impl_ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            #[allow(clippy::cast_sign_loss)]
            fn to_value(&self) -> Value {
                let v = i64::from(*self);
                if v >= 0 {
                    Value::UInt(v as u64)
                } else {
                    Value::Int(v)
                }
            }
        }
    )*};
}
impl_ser_signed!(i8, i16, i32, i64);

impl Serialize for isize {
    #[allow(clippy::cast_sign_loss)]
    fn to_value(&self) -> Value {
        let v = *self as i64;
        if v >= 0 {
            Value::UInt(v as u64)
        } else {
            Value::Int(v)
        }
    }
}

macro_rules! impl_ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(u64::from(*self))
            }
        }
    )*};
}
impl_ser_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::UInt(*self as u64)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

// ---- Deserialize impls -----------------------------------------------

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool()
            .ok_or_else(|| DeError(format!("expected bool, got {v:?}")))
    }
}

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let wide: i128 = match v {
                    Value::Int(i) => i128::from(*i),
                    Value::UInt(u) => i128::from(*u),
                    _ => return Err(DeError(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), v))),
                };
                <$t>::try_from(wide).map_err(|_| DeError(format!(
                    concat!("integer out of range for ", stringify!($t), ": {}"), wide)))
            }
        }
    )*};
}
impl_de_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .ok_or_else(|| DeError(format!("expected f64, got {v:?}")))
    }
}

impl Deserialize for f32 {
    #[allow(clippy::cast_possible_truncation)]
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(f64::from_value(v)? as f32)
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(ToString::to_string)
            .ok_or_else(|| DeError(format!("expected string, got {v:?}")))
    }
}

impl Deserialize for &'static str {
    /// Static-catalog support (e.g. province tables with `&'static str`
    /// names): the parsed string is leaked to obtain `'static`. Fine for
    /// bounded configuration data, not for unbounded streams.
    fn from_value(v: &Value) -> Result<Self, DeError> {
        String::from_value(v).map(|s| &*Box::leak(s.into_boxed_str()))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError(format!("expected array, got {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let arr = v
            .as_array()
            .filter(|a| a.len() == 2)
            .ok_or_else(|| DeError(format!("expected 2-element array, got {v:?}")))?;
        Ok((A::from_value(&arr[0])?, B::from_value(&arr[1])?))
    }
}

// ---- Derive-support helpers (used by generated code) ------------------

/// Runtime hooks the `serde_derive` stand-in generates calls into. Not
/// part of the public API contract; kept stable for the generated code.
pub mod __private {
    use super::{DeError, Map, Value};

    /// # Errors
    ///
    /// Returns [`DeError`] when `v` is not an object.
    pub fn as_object<'v>(v: &'v Value, ty: &str) -> Result<&'v Map, DeError> {
        v.as_object()
            .ok_or_else(|| DeError(format!("expected {ty} object, got {v:?}")))
    }

    /// Missing fields read as `Null` so `Option` fields can default.
    #[must_use]
    pub fn field<'v>(m: &'v Map, key: &str) -> &'v Value {
        m.get(key).unwrap_or(&super::value::NULL)
    }

    #[must_use]
    pub fn err_context(ty: &str, field: &str, e: DeError) -> DeError {
        DeError(format!("{ty}.{field}: {e}"))
    }

    #[must_use]
    pub fn unknown_variant(ty: &str, v: &Value) -> DeError {
        DeError(format!("unknown {ty} variant: {v:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::value::{Map, Value};
    use super::{Deserialize, Serialize};

    #[test]
    fn map_preserves_insertion_order() {
        let mut m = Map::new();
        m.insert("z".into(), Value::Int(1));
        m.insert("a".into(), Value::Int(2));
        let keys: Vec<&String> = m.keys();
        assert_eq!(keys, ["z", "a"]);
    }

    #[test]
    fn primitive_roundtrips() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-9i64).to_value()).unwrap(), -9);
        assert_eq!(f64::from_value(&0.1f64.to_value()).unwrap(), 0.1);
        assert_eq!(
            Option::<String>::from_value(&Value::Null).unwrap(),
            None::<String>
        );
        let v: Vec<f64> = vec![1.5, -2.5];
        assert_eq!(Vec::<f64>::from_value(&v.to_value()).unwrap(), v);
    }

    #[test]
    fn value_indexing_and_eq() {
        let mut m = Map::new();
        m.insert("x".into(), Value::Int(1));
        let v = Value::Object(m);
        assert_eq!(v["x"], 1);
        assert!(v["missing"].is_null());
    }
}
