//! Offline stand-in for `rand_chacha`, implementing a genuine ChaCha8
//! stream cipher core (RFC 8439 block function with 8 rounds) against the
//! vendored `rand` traits. Deterministic per seed, cloneable mid-stream,
//! and its keystream matches any standard ChaCha8 implementation with a
//! zero nonce.

use rand::{RngCore, SeedableRng};

const WORDS_PER_BLOCK: usize = 16;

/// ChaCha stream RNG with `R` double-rounds hidden behind concrete types
/// below (8 rounds = 4 double-rounds for [`ChaCha8Rng`]).
#[derive(Clone, Debug)]
pub struct ChaChaRng<const DOUBLE_ROUNDS: usize> {
    /// 256-bit key as 8 little-endian words.
    key: [u32; 8],
    /// 64-bit block counter (words 12–13); nonce (words 14–15) is zero.
    counter: u64,
    /// Current keystream block.
    block: [u32; WORDS_PER_BLOCK],
    /// Next unread word index in `block`; `WORDS_PER_BLOCK` = exhausted.
    index: usize,
}

#[inline]
fn quarter_round(state: &mut [u32; WORDS_PER_BLOCK], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl<const DOUBLE_ROUNDS: usize> ChaChaRng<DOUBLE_ROUNDS> {
    fn refill(&mut self) {
        // "expand 32-byte k"
        let mut state: [u32; WORDS_PER_BLOCK] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let input = state;
        for _ in 0..DOUBLE_ROUNDS {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.block = state;
        self.index = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl<const DOUBLE_ROUNDS: usize> SeedableRng for ChaChaRng<DOUBLE_ROUNDS> {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (w, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *w = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaChaRng {
            key,
            counter: 0,
            block: [0; WORDS_PER_BLOCK],
            index: WORDS_PER_BLOCK,
        }
    }
}

impl<const DOUBLE_ROUNDS: usize> RngCore for ChaChaRng<DOUBLE_ROUNDS> {
    fn next_u32(&mut self) -> u32 {
        if self.index >= WORDS_PER_BLOCK {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        (hi << 32) | lo
    }
}

/// ChaCha with 8 rounds — the variant the workspace seeds everywhere.
pub type ChaCha8Rng = ChaChaRng<4>;
/// ChaCha with 12 rounds.
pub type ChaCha12Rng = ChaChaRng<6>;
/// ChaCha with 20 rounds.
pub type ChaCha20Rng = ChaChaRng<10>;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn chacha20_matches_known_zero_key_keystream() {
        // ChaCha20 with zero key, zero nonce, counter 0 emits the widely
        // published keystream starting 76 b8 e0 ad a0 f1 3d 90 ... — i.e.
        // little-endian words 0xade0_b876, 0x903d_f1a0.
        let mut rng = ChaCha20Rng::from_seed([0u8; 32]);
        assert_eq!(rng.next_u32(), 0xade0_b876);
        assert_eq!(rng.next_u32(), 0x903d_f1a0);
    }

    #[test]
    fn deterministic_per_seed_and_clone_resumes() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let draws_a: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let draws_b: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        assert_eq!(draws_a, draws_b);

        let mut c = ChaCha8Rng::seed_from_u64(43);
        assert_ne!(draws_a[0], c.next_u64());

        // Clones resume mid-stream.
        let mut orig = ChaCha8Rng::seed_from_u64(7);
        let _ = orig.next_u32();
        let mut clone = orig.clone();
        assert_eq!(orig.next_u64(), clone.next_u64());
    }

    #[test]
    fn usable_through_generic_rng_bounds() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
