//! Offline stand-in for `rayon`.
//!
//! The build environment has no registry access, so the workspace vendors
//! the subset it uses: `into_par_iter` / `par_iter` / `par_chunks` with
//! `map` / `for_each` / `collect`, plus [`ThreadPoolBuilder`] /
//! [`ThreadPool::install`] for pinning thread counts in tests.
//!
//! Unlike real rayon there is no work-stealing pool: each parallel
//! adapter materializes its items, splits them into contiguous blocks,
//! runs one scoped OS thread per block, and concatenates block results
//! **in block order**. Results are therefore always in input order (the
//! same guarantee rayon's indexed `collect` gives), and the workspace's
//! kernels additionally make every reduction a fixed-chunk ordered merge
//! so numeric output is bit-identical for any thread count.
//!
//! Thread-count resolution: `ThreadPool::install` override (thread-local)
//! → `RAYON_NUM_THREADS` env var → `std::thread::available_parallelism`.
//! Worker threads run nested parallel calls serially, which keeps
//! oversubscription bounded on coarse env-level × chunk-level nests.

use std::cell::Cell;
use std::sync::OnceLock;

thread_local! {
    static OVERRIDE_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

fn default_num_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            })
    })
}

/// Number of threads parallel adapters will use on this thread right now.
#[must_use]
pub fn current_num_threads() -> usize {
    OVERRIDE_THREADS
        .with(Cell::get)
        .unwrap_or_else(default_num_threads)
}

fn with_override<R>(n: Option<usize>, f: impl FnOnce() -> R) -> R {
    let prev = OVERRIDE_THREADS.with(|c| c.replace(n));
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE_THREADS.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(prev);
    f()
}

/// Run `f` over `items`, in parallel when it pays, returning outputs in
/// input order.
fn run_ordered<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = current_num_threads().min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Contiguous blocks, remainder spread over the leading blocks, so the
    // partition depends only on (len, threads).
    let len = items.len();
    let base = len / threads;
    let extra = len % threads;
    let mut blocks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    for b in 0..threads {
        let take = base + usize::from(b < extra);
        blocks.push(it.by_ref().take(take).collect());
    }

    let f = &f;
    let mut results: Vec<Vec<R>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = blocks
            .into_iter()
            .map(|block| {
                scope.spawn(move || {
                    // Nested parallel calls inside a worker run serially.
                    with_override(Some(1), || block.into_iter().map(f).collect::<Vec<R>>())
                })
            })
            .collect();
        for h in handles {
            results.push(h.join().expect("rayon stand-in worker panicked"));
        }
    });
    let mut out = Vec::with_capacity(len);
    for block in results {
        out.extend(block);
    }
    out
}

/// Eagerly materialized parallel iterator. Adapters preserve input order.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    pub fn map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParIter {
            items: run_ordered(self.items, f),
        }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        run_ordered(self.items, f);
    }

    #[must_use]
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    pub fn zip<U: Send>(self, other: ParIter<U>) -> ParIter<(T, U)> {
        ParIter {
            items: self.items.into_iter().zip(other.items).collect(),
        }
    }

    pub fn filter<F>(self, f: F) -> ParIter<T>
    where
        F: Fn(&T) -> bool + Sync,
    {
        ParIter {
            items: self.items.into_iter().filter(|t| f(t)).collect(),
        }
    }

    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    pub fn reduce<Id, Op>(self, identity: Id, op: Op) -> T
    where
        Id: Fn() -> T,
        Op: Fn(T, T) -> T + Sync,
    {
        self.items.into_iter().fold(identity(), op)
    }

    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<T>,
    {
        self.items.into_iter().sum()
    }
}

/// Owned-collection entry point (`Vec<T>`, ranges, …).
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

macro_rules! impl_range_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for core::ops::Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}
impl_range_par_iter!(u32, u64, usize, i32, i64);

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    fn into_par_iter(self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    fn into_par_iter(self) -> ParIter<&'a T> {
        self.as_slice().into_par_iter()
    }
}

/// Borrowing entry points (`par_iter`, `par_iter_mut`).
pub trait IntoParallelRefIterator<'a> {
    type Item: Send;
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a, C: 'a + ?Sized> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoParallelIterator<Item = &'a T>,
{
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        self.into_par_iter()
    }
}

pub trait IntoParallelRefMutIterator<'a> {
    type Item: Send;
    fn par_iter_mut(&'a mut self) -> ParIter<Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = &'a mut T;
    fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;
    fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

/// `par_chunks` / `par_chunks_mut` over slices.
pub trait ParallelSlice<T: Sync> {
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]> {
        assert!(chunk_size > 0, "chunk_size must be positive");
        ParIter {
            items: self.chunks(chunk_size).collect(),
        }
    }
}

pub trait ParallelSliceMut<T: Send> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        assert!(chunk_size > 0, "chunk_size must be positive");
        ParIter {
            items: self.chunks_mut(chunk_size).collect(),
        }
    }
}

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    std::thread::scope(|scope| {
        let hb = scope.spawn(|| with_override(Some(1), b));
        let ra = with_override(Some(1), a);
        (ra, hb.join().expect("rayon stand-in join worker panicked"))
    })
}

#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder` for the `install` pattern.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    #[must_use]
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// # Errors
    ///
    /// Never fails in the stand-in; the `Result` mirrors rayon's API.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads.unwrap_or_else(default_num_threads),
        })
    }
}

/// A fixed thread-count scope: `pool.install(f)` runs `f` with all
/// parallel adapters inside using `num_threads` threads.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        with_override(Some(self.num_threads), f)
    }

    #[must_use]
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

pub mod prelude {
    pub use super::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelSlice,
        ParallelSliceMut,
    };
}

pub mod iter {
    pub use super::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParIter,
    };
}

pub mod slice {
    pub use super::{ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..1000u64).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, (0..1000u64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_chunks_are_contiguous_and_ordered() {
        let data: Vec<u32> = (0..100).collect();
        let sums: Vec<u32> = data.par_chunks(7).map(|c| c.iter().sum()).collect();
        let expect: Vec<u32> = data.chunks(7).map(|c| c.iter().sum()).collect();
        assert_eq!(sums, expect);
    }

    #[test]
    fn install_pins_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        pool.install(|| {
            assert_eq!(current_num_threads(), 3);
            let v: Vec<usize> = (0..10usize).into_par_iter().map(|x| x + 1).collect();
            assert_eq!(v.len(), 10);
        });
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let run = |threads: usize| -> Vec<f64> {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            pool.install(|| {
                (0..257usize)
                    .into_par_iter()
                    .map(|i| (i as f64).sin())
                    .collect()
            })
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "x".to_string());
        assert_eq!(a, 2);
        assert_eq!(b, "x");
    }

    #[test]
    fn par_iter_mut_mutates_in_place() {
        let mut v: Vec<u32> = (0..50).collect();
        v.par_iter_mut().for_each(|x| *x *= 3);
        assert_eq!(v[49], 147);
    }
}
