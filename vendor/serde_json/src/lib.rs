//! Offline stand-in for `serde_json`, rendering and parsing the vendored
//! `serde` Value tree.
//!
//! Numeric fidelity: floats print in Rust's shortest-roundtrip decimal
//! form (with a `.0` suffix for integral floats, like real serde_json)
//! and parse back with `str::parse::<f64>`, which is exact for shortest
//! representations — so `float_roundtrip` semantics hold: every finite
//! f64 survives `to_string` → `from_str` bit-identically. Non-finite
//! floats serialize as `null`, matching real serde_json's Value behavior.

pub use serde::value::{Map, Value};
use serde::{Deserialize, Serialize};

/// Serialization/deserialization failure.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    #[must_use]
    pub fn message(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Lower any serializable value to a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Rebuild a typed value from a [`Value`] tree.
///
/// # Errors
///
/// Returns [`Error`] when the tree's shape doesn't match `T`.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value).map_err(Error::from)
}

/// Compact JSON text.
///
/// # Errors
///
/// Infallible for tree-shaped values; `Result` mirrors the real API.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Two-space-indented JSON text.
///
/// # Errors
///
/// Infallible for tree-shaped values; `Result` mirrors the real API.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse JSON text into any deserializable type.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value_str(s)?;
    from_value(&value)
}

// ---- writer ----------------------------------------------------------

fn write_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e16 {
        // Keep a decimal point so the value reads back as a float-shaped
        // number, matching serde_json's rendering of whole floats.
        out.push_str(&format!("{f:.1}"));
    } else {
        // `{}` on f64 is shortest-roundtrip: parsing it back is exact.
        out.push_str(&format!("{f}"));
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_f64(out, *f),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                    if indent.is_none() {
                        // compact: no space
                    }
                }
                write_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push('}');
        }
    }
}

// ---- parser ----------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error("invalid utf-8 in string".into()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by this
                            // workspace's data; reject rather than corrupt.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error("unsupported \\u escape".into()))?;
                            out.push(c);
                        }
                        other => {
                            return Err(Error(format!("bad escape \\{}", other as char)));
                        }
                    }
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected , or ] at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error(format!("expected , or }} at byte {}", self.pos))),
            }
        }
    }
}

/// Build a [`Value`] in place. Supports the shapes this workspace uses:
/// `null`, flat/nested object literals with string-literal keys, array
/// literals, and arbitrary serializable expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$item) ),* ])
    };
    ({ $($key:literal : $value:expr),* $(,)? }) => {{
        let mut __map = $crate::Map::new();
        $( __map.insert($key.to_string(), $crate::to_value(&$value)); )*
        $crate::Value::Object(__map)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_roundtrip_is_bit_exact() {
        for &f in &[
            0.1,
            1.0 / 3.0,
            -2.5e-17,
            1e300,
            -0.0,
            42.0,
            f64::MIN_POSITIVE,
        ] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "roundtrip failed for {f}");
        }
    }

    #[test]
    fn whole_floats_keep_decimal_point() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&-3.0f64).unwrap(), "-3.0");
    }

    #[test]
    fn json_macro_and_indexing() {
        let rows = vec![1.5f64, 2.5];
        let v = json!({ "rows": rows, "n": 2, "name": "x" });
        assert_eq!(v["n"], 2);
        assert_eq!(v["name"], "x");
        assert_eq!(v["rows"][1], 2.5);
        let text = to_string(&v).unwrap();
        assert_eq!(text, r#"{"rows":[1.5,2.5],"n":2,"name":"x"}"#);
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_printing_indents() {
        let v = json!({ "a": 1 });
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"a\": 1\n}");
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "line\nbreak \"quoted\" back\\slash\ttab";
        let text = to_string(&s.to_string()).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<Value>("{\"a\":").is_err());
        assert!(from_str::<Value>("[1,2,]x").is_err());
        assert!(from_str::<f64>("\"nope\"").is_err());
    }
}
