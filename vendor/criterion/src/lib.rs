//! Offline stand-in for `criterion`.
//!
//! The build environment has no registry access, so the workspace vendors
//! the harness subset its benches use: `criterion_group!` /
//! `criterion_main!`, benchmark groups with `sample_size`,
//! `bench_function` / `bench_with_input`, and `Bencher::iter`. Timings
//! are wall-clock medians over a fixed number of batches — much simpler
//! than real criterion's analysis, but stable enough to compare runs on
//! the same machine.
//!
//! `cargo bench -- --test` (criterion's smoke mode, used by CI) runs each
//! benchmark exactly once and skips measurement.

use std::time::Instant;

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Debug, Clone, Copy)]
struct Mode {
    /// `--test`: run each benchmark body once, skip timing.
    quick: bool,
}

impl Mode {
    fn from_args() -> Self {
        let quick = std::env::args().any(|a| a == "--test" || a == "--quick");
        Mode { quick }
    }
}

/// Top-level harness handle.
#[derive(Debug)]
pub struct Criterion {
    mode: Mode,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            mode: Mode::from_args(),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            mode: self.mode,
            sample_size: 20,
            _marker: std::marker::PhantomData,
        }
    }

    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        let mut group = self.benchmark_group(&id);
        group.run_named(id, f);
    }
}

/// Identifier for parameterized benchmarks: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            full: format!("{function}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    mode: Mode,
    sample_size: usize,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Lower bound on measurement batches (kept for API compatibility;
    /// the stand-in uses it as the batch count directly).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        let full = format!("{}/{}", self.name, id);
        self.run_named(full, f);
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let full = format!("{}/{}", self.name, id.full);
        self.run_named(full, |b| f(b, input));
    }

    pub fn finish(self) {}

    fn run_named(&mut self, label: String, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            quick: self.mode.quick,
            samples: Vec::new(),
            batch: 1,
        };
        if self.mode.quick {
            f(&mut bencher);
            println!("test {label} ... ok (quick mode)");
            return;
        }
        // Calibrate batch size so one batch takes ≳1 ms, then measure.
        bencher.calibrate(&mut f);
        bencher.samples.clear();
        for _ in 0..self.sample_size {
            f(&mut bencher);
        }
        let median = bencher.median_ns();
        println!("{label:<50} {:>12} ns/iter", format_ns(median));
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}e9", ns / 1e9)
    } else {
        format!("{ns:.1}")
    }
}

/// Passed to benchmark closures; `iter` times the supplied routine.
pub struct Bencher {
    quick: bool,
    /// ns-per-iteration samples collected so far.
    samples: Vec<f64>,
    /// Iterations per timed batch.
    batch: u64,
}

impl Bencher {
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        if self.quick {
            black_box(routine());
            return;
        }
        let start = Instant::now();
        for _ in 0..self.batch {
            black_box(routine());
        }
        let elapsed = start.elapsed().as_secs_f64();
        #[allow(clippy::cast_precision_loss)]
        self.samples.push(elapsed * 1e9 / self.batch as f64);
    }

    fn calibrate(&mut self, f: &mut impl FnMut(&mut Bencher)) {
        self.batch = 1;
        loop {
            let before = self.samples.len();
            let start = Instant::now();
            f(self);
            let took = start.elapsed().as_secs_f64();
            // The closure may not have called `iter` at all; don't spin.
            if self.samples.len() == before || took >= 1e-3 || self.batch >= 1 << 20 {
                break;
            }
            self.batch *= 2;
        }
    }

    fn median_ns(&self) -> f64 {
        let mut s = self.samples.clone();
        if s.is_empty() {
            return 0.0;
        }
        s.sort_by(f64::total_cmp);
        s[s.len() / 2]
    }
}

/// Mirror of criterion's group/main macros.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_runs_once() {
        let mut b = Bencher {
            quick: true,
            samples: Vec::new(),
            batch: 1,
        };
        let mut count = 0;
        b.iter(|| count += 1);
        assert_eq!(count, 1);
        assert!(b.samples.is_empty());
    }

    #[test]
    fn measurement_collects_samples() {
        let mut b = Bencher {
            quick: false,
            samples: Vec::new(),
            batch: 4,
        };
        b.iter(|| black_box(3u64.pow(7)));
        assert_eq!(b.samples.len(), 1);
        assert!(b.samples[0] >= 0.0);
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("train", 8);
        assert_eq!(id.full, "train/8");
    }
}
