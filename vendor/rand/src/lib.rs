//! Offline stand-in for the `rand` crate (0.8-era API subset).
//!
//! The build environment has no registry access, so the workspace vendors
//! the surface it uses: [`RngCore`] / [`SeedableRng`] / [`Rng`] with
//! `gen::<f64>()`-style unit sampling, integer/float `gen_range`, and
//! `seq::SliceRandom::shuffle`. The value streams are self-consistent and
//! deterministic per seed (which is all the repo's tests assert), but are
//! not guaranteed to match the real crate draw-for-draw.

/// Low-level source of randomness.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// RNGs constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed via SplitMix64, matching the
    /// rand_core approach of deriving all seed bytes from one state word.
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = SplitMix64 { state };
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types samplable uniformly from the RNG's full output ("Standard"
/// distribution in real rand).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_lossless)]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types usable as `gen_range` bounds.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap,
                    clippy::cast_sign_loss, clippy::cast_lossless)]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Debiased multiply-shift rejection (Lemire); the retry
                // probability is < span / 2^64 per draw.
                let threshold = (u64::MAX as u128 + 1 - span % (u64::MAX as u128 + 1))
                    % span.max(1);
                loop {
                    let x = rng.next_u64() as u128;
                    let m = x * span;
                    if (m & u64::MAX as u128) >= threshold || span.is_power_of_two() {
                        return (lo as i128 + (m >> 64) as i128) as $t;
                    }
                }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty inclusive range");
                if lo == hi {
                    return lo;
                }
                if hi < <$t>::MAX {
                    Self::sample_half_open(rng, lo, hi + 1)
                } else if lo > <$t>::MIN {
                    Self::sample_half_open(rng, lo - 1, hi).max(lo)
                } else {
                    // Full domain: every output is valid.
                    <$t as Standard>::sample(rng)
                }
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let unit = <$t as Standard>::sample(rng);
                lo + unit * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                Self::sample_half_open(rng, lo, hi)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    fn fill<T: Standard>(&mut self, dest: &mut [T]) {
        for v in dest.iter_mut() {
            *v = T::sample(self);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extensions: Fisher–Yates shuffle and uniform choice.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }

    /// Marker re-export so `use rand::seq::*` keeps working.
    pub use super::RngCore as _SeqRngCore;

    #[allow(dead_code)]
    fn _assert_object_safe(_: &mut dyn RngCore) {}
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small fast xoshiro256++ generator (stand-in for rand's `SmallRng`).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod prelude {
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn unit_floats_are_in_range() {
        let mut rng = Counter(42);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let a = rng.gen_range(3..17u32);
            assert!((3..17).contains(&a));
            let b = rng.gen_range(0u8..=1);
            assert!(b <= 1);
            let c = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&c));
            let d = rng.gen_range(-1.5f64..1.5);
            assert!((-1.5..1.5).contains(&d));
        }
    }

    #[test]
    fn shuffle_is_a_permutation_and_works_through_dyn_sized() {
        let mut rng = Counter(9);
        let mut v: Vec<u32> = (0..50).collect();
        fn go<R: Rng + ?Sized>(v: &mut [u32], rng: &mut R) {
            v.shuffle(rng);
        }
        go(&mut v, &mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
