//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the small API subset it actually uses: [`Bytes`] / [`BytesMut`] with the
//! little-endian [`Buf`] / [`BufMut`] accessors needed by the loan-frame
//! binary format. Semantics match the real crate for this subset; `Bytes`
//! clones share the underlying allocation.

use std::sync::Arc;

/// Cheaply cloneable immutable byte buffer with a read cursor.
#[derive(Clone, Debug, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    /// Read cursor: `Buf` accessors consume from the front by advancing it.
    pos: usize,
}

impl Bytes {
    #[must_use]
    pub fn new() -> Self {
        Self::from(Vec::new())
    }

    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Sub-range view (relative to the unread portion), sharing storage.
    #[must_use]
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice out of bounds"
        );
        // Share the allocation; narrow by materializing the range when the
        // end moves (Arc<[u8]> has no end offset — copying is fine for the
        // test-sized buffers this stand-in serves).
        Bytes::from(self.as_slice()[range].to_vec())
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            data: v.into(),
            pos: 0,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes {
            data: v.into(),
            pos: 0,
        }
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

/// Growable byte buffer implementing [`BufMut`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
    pos: usize,
}

impl BytesMut {
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
            pos: 0,
        }
    }

    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Convert into an immutable [`Bytes`] without copying the tail.
    #[must_use]
    pub fn freeze(self) -> Bytes {
        let mut v = self.data;
        if self.pos > 0 {
            v.drain(..self.pos);
        }
        Bytes::from(v)
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl From<&[u8]> for BytesMut {
    fn from(v: &[u8]) -> Self {
        BytesMut {
            data: v.to_vec(),
            pos: 0,
        }
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data[self.pos..]
    }
}

/// Read side: consuming little-endian accessors over a byte cursor.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut a = [0u8; 2];
        a.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_le_bytes(a)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut a = [0u8; 4];
        a.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(a)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut a = [0u8; 8];
        a.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(a)
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.remaining(), "advance past end of Bytes");
        self.pos += cnt;
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.remaining(), "advance past end of BytesMut");
        self.pos += cnt;
    }
}

/// Write side: appending little-endian writers.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le_accessors() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(7);
        b.put_u16_le(513);
        b.put_u32_le(70_000);
        b.put_u64_le(1 << 40);
        b.put_f32_le(1.5);
        b.put_slice(b"xy");
        let mut frozen = b.freeze();
        assert_eq!(frozen.remaining(), 1 + 2 + 4 + 8 + 4 + 2);
        assert_eq!(frozen.get_u8(), 7);
        assert_eq!(frozen.get_u16_le(), 513);
        assert_eq!(frozen.get_u32_le(), 70_000);
        assert_eq!(frozen.get_u64_le(), 1 << 40);
        assert_eq!(frozen.get_f32_le(), 1.5);
        let mut two = [0u8; 2];
        frozen.copy_to_slice(&mut two);
        assert_eq!(&two, b"xy");
        assert_eq!(frozen.remaining(), 0);
    }

    #[test]
    fn clones_share_and_cursor_is_per_handle() {
        let bytes = Bytes::from(vec![1u8, 2, 3]);
        let mut reader = bytes.clone();
        assert_eq!(reader.get_u8(), 1);
        assert_eq!(bytes.remaining(), 3);
        assert_eq!(reader.remaining(), 2);
    }
}
