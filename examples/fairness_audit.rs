//! Fairness audit: the workflow a model-risk team would run before
//! deploying a loan-default model.
//!
//! Trains a candidate model, breaks its performance down by province
//! (paper Fig. 1), flags provinces whose KS falls more than a tolerance
//! below the portfolio mean, attaches bootstrap confidence intervals to
//! the flagged provinces, and compares the candidate against a
//! LightMIRM-trained challenger.
//!
//! Run with: `cargo run --release --example fairness_audit`

use lightmirm::metrics::{bootstrap_ci, ks, psi};
use lightmirm::prelude::*;

const REL_TOLERANCE: f64 = 0.15; // flag provinces >15% below mean KS

fn main() {
    let frame = lightmirm::data::generate(&GeneratorConfig::small(60_000, 7));
    let split = lightmirm::data::temporal_split(&frame, 2020);
    let mut fe_cfg = FeatureExtractorConfig::default();
    fe_cfg.gbdt.n_trees = 48;
    let extractor = FeatureExtractor::fit(&split.train, &fe_cfg).expect("GBDT trains");
    let names = ProvinceCatalog::standard().names();
    let train = extractor
        .to_env_dataset(&split.train, names.clone(), None)
        .expect("transform");
    let test = extractor
        .to_env_dataset(&split.test, names, None)
        .expect("transform");

    // Candidate: business-as-usual ERM head.
    let candidate = ErmTrainer::new(TrainConfig {
        epochs: 120,
        outer_lr: 0.05,
        momentum: 0.9,
        ..Default::default()
    })
    .fit(&train, None);

    let summary = evaluate_filtered(&candidate.model, &test, 50).expect("scorable");
    println!("== Candidate (ERM) province audit ==");
    println!("portfolio mean KS {:.4}\n", summary.m_ks);

    let mut flagged = Vec::new();
    for env in &summary.envs {
        let gap = 1.0 - env.ks / summary.m_ks;
        let marker = if gap > REL_TOLERANCE { " <-- FLAG" } else { "" };
        println!(
            "{:<14} n={:<6} KS {:.4} ({:+.1}% vs mean){marker}",
            env.name,
            env.n,
            env.ks,
            -gap * 100.0
        );
        if gap > REL_TOLERANCE {
            flagged.push(env.name.clone());
        }
    }

    // Bootstrap CIs on the flagged provinces: is the deficit real or
    // small-sample noise?
    if !flagged.is_empty() {
        println!("\n== Bootstrap check on flagged provinces (95% CI) ==");
        let rows = test.all_rows();
        let scores = candidate.model.predict_rows(&test.x, &rows, &test.env_ids);
        for name in &flagged {
            let province = test
                .env_names
                .iter()
                .position(|n| n == name)
                .expect("flagged name in catalog");
            let idx: Vec<usize> = rows
                .iter()
                .enumerate()
                .filter(|(_, &r)| test.env_ids[r as usize] as usize == province)
                .map(|(i, _)| i)
                .collect();
            let s: Vec<f64> = idx.iter().map(|&i| scores[i]).collect();
            let y: Vec<u8> = idx.iter().map(|&i| test.labels[rows[i] as usize]).collect();
            match bootstrap_ci(ks, &s, &y, 300, 0.95, 99) {
                Ok(ci) => println!(
                    "{name:<14} KS {:.4} [{:.4}, {:.4}] over {} resamples",
                    ci.estimate, ci.lo, ci.hi, ci.resamples
                ),
                Err(e) => println!("{name:<14} unscorable: {e}"),
            }
        }
    }

    // Challenger: LightMIRM head on the same features.
    let challenger = LightMirmTrainer::new(TrainConfig {
        epochs: 40,
        inner_lr: 0.1,
        outer_lr: 0.3,
        momentum: 0.0,
        ..Default::default()
    })
    .fit(&train, None);
    let ch = evaluate_filtered(&challenger.model, &test, 50).expect("scorable");
    println!("\n== Challenger (LightMIRM) ==");
    println!(
        "mKS {:.4} (was {:.4}) | wKS {:.4} (was {:.4}, worst {})",
        ch.m_ks, summary.m_ks, ch.w_ks, summary.w_ks, ch.worst_ks_env
    );
    let verdict = if ch.w_ks > summary.w_ks {
        "challenger improves the worst province - promote to shadow deployment"
    } else {
        "challenger does not improve the worst province - keep candidate"
    };
    println!("audit verdict: {verdict}");

    // Score-drift gate: PSI of the candidate's score distribution between
    // the training years and 2020 (the monitoring alarm that would have
    // flagged the shift the paper analyses in IV-B).
    let train_rows = train.all_rows();
    let train_scores = candidate
        .model
        .predict_rows(&train.x, &train_rows, &train.env_ids);
    let test_rows = test.all_rows();
    let test_scores = candidate
        .model
        .predict_rows(&test.x, &test_rows, &test.env_ids);
    let report = psi(&train_scores, &test_scores, 10).expect("PSI computes");
    println!(
        "\nscore-drift gate: PSI(train scores -> 2020 scores) = {:.4} ({:?})",
        report.psi,
        report.level()
    );
}
