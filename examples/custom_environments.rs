//! Custom environments: LightMIRM is not tied to provinces.
//!
//! The paper splits by province, but any subpopulation definition works.
//! This example re-partitions the same loan data by *vehicle type* —
//! another axis with heterogeneous risk — trains LightMIRM against those
//! environments, and shows the per-environment fairness report. It also
//! demonstrates using the trainer API directly on a hand-built
//! `EnvDataset` without the pipeline helper.
//!
//! Run with: `cargo run --release --example custom_environments`

use lightmirm::core::env::EnvDataset;
use lightmirm::prelude::*;

fn main() {
    let frame = lightmirm::data::generate(&GeneratorConfig::small(50_000, 23));
    let split = lightmirm::data::temporal_split(&frame, 2020);
    let mut fe_cfg = FeatureExtractorConfig::default();
    fe_cfg.gbdt.n_trees = 32;
    let extractor = FeatureExtractor::fit(&split.train, &fe_cfg).expect("GBDT trains");

    // Build EnvDatasets keyed by vehicle type instead of province.
    let vehicle_names: Vec<String> = lightmirm::data::VehicleType::ALL
        .iter()
        .map(|v| v.name().to_string())
        .collect();
    let build = |frame: &LoanFrame| -> EnvDataset {
        let x = extractor.transform(frame).expect("transform");
        EnvDataset::new(
            x,
            frame.label.clone(),
            frame.vehicle.iter().map(|&v| v as u16).collect(),
            vehicle_names.clone(),
        )
        .expect("aligned dataset")
    };
    let train = build(&split.train);
    let test = build(&split.test);
    println!(
        "environments by vehicle type: {:?}",
        train
            .active_envs()
            .iter()
            .map(|&m| (&train.env_names[m], train.env_rows(m).len()))
            .collect::<Vec<_>>()
    );

    let erm = ErmTrainer::new(TrainConfig {
        epochs: 120,
        outer_lr: 0.05,
        momentum: 0.9,
        ..Default::default()
    })
    .fit(&train, None);
    let light = LightMirmTrainer::new(TrainConfig {
        epochs: 40,
        inner_lr: 0.1,
        outer_lr: 0.3,
        momentum: 0.0,
        ..Default::default()
    })
    .fit(&train, None);

    println!("\nper-vehicle-type test performance:");
    println!(
        "{:<14} {:>7} {:>7} {:>7} {:>7}",
        "method", "mKS", "wKS", "mAUC", "wAUC"
    );
    for (name, out) in [("ERM", &erm), ("LightMIRM", &light)] {
        let s = evaluate_filtered(&out.model, &test, 50).expect("scorable");
        println!(
            "{name:<14} {:>7.4} {:>7.4} {:>7.4} {:>7.4}  (worst: {})",
            s.m_ks, s.w_ks, s.m_auc, s.w_auc, s.worst_ks_env
        );
    }
}
