//! Online monitoring: the companion-runner deployment of §IV-C1.
//!
//! The platform's incumbent model keeps approving/rejecting as before; a
//! LightMIRM companion can veto approvals. This example replays a held-out
//! 2020 stream, sweeps the companion's threshold, prints the FPR vs
//! bad-debt trade-off curve (paper Fig. 5), and picks the operating point
//! that a risk team targeting a bad-debt budget would choose.
//!
//! Run with: `cargo run --release --example online_monitoring`

use lightmirm::prelude::*;

const BAD_DEBT_BUDGET: f64 = 0.02; // target: at most 2% bad debt

fn main() {
    let frame = lightmirm::data::generate(&GeneratorConfig::small(60_000, 11));
    let split = lightmirm::data::temporal_split(&frame, 2020);
    let mut fe_cfg = FeatureExtractorConfig::default();
    fe_cfg.gbdt.n_trees = 48;
    let extractor = FeatureExtractor::fit(&split.train, &fe_cfg).expect("GBDT trains");
    let names = ProvinceCatalog::standard().names();
    let train = extractor
        .to_env_dataset(&split.train, names.clone(), None)
        .expect("transform");
    let test = extractor
        .to_env_dataset(&split.test, names, None)
        .expect("transform");

    // Incumbent: the platform's existing scorer (we stand in the raw GBDT
    // with a lenient threshold). Companion: LightMIRM over leaf features.
    let incumbent_scores = extractor
        .gbdt()
        .predict_proba_batch(split.test.feature_matrix());
    let companion = LightMirmTrainer::new(TrainConfig {
        epochs: 40,
        inner_lr: 0.1,
        outer_lr: 0.3,
        momentum: 0.0,
        ..Default::default()
    })
    .fit(&train, None);
    let rows = test.all_rows();
    let companion_scores = companion.model.predict_rows(&test.x, &rows, &test.env_ids);

    // Incumbent approves below the 70th percentile of its own scores — a
    // conservative book with low-single-digit bad debt, the regime of the
    // paper's online test.
    let mut sorted = incumbent_scores.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let incumbent_threshold = sorted[(sorted.len() as f64 * 0.70) as usize];

    let grid: Vec<f64> = (1..=60).map(|i| i as f64 / 60.0).collect();
    let replayed = replay(
        &incumbent_scores,
        &companion_scores,
        &test.labels,
        incumbent_threshold,
        &grid,
    )
    .expect("replay");

    println!(
        "incumbent alone: {:.2}% bad debt on {} approvals",
        replayed.incumbent_bad_debt * 100.0,
        split.test.len()
    );
    println!(
        "\n{:>6} {:>8} {:>10} {:>8}",
        "tau", "FPR", "bad debt", "veto"
    );
    for p in replayed.curve.iter().step_by(6) {
        println!(
            "{:>6.2} {:>7.2}% {:>9.2}% {:>7.2}%",
            p.threshold,
            p.false_positive_rate * 100.0,
            p.bad_debt_rate * 100.0,
            p.veto_rate * 100.0
        );
    }

    // Economic view: under explicit margin/LGD assumptions, the optimal
    // veto threshold maximizes realized portfolio profit.
    let economics = ProfitModel {
        margin: 0.06,
        loss_given_default: 0.55,
    };
    let (best_tau, best_profit) =
        best_threshold(&companion_scores, &test.labels, &grid, &economics);
    println!(
        "\nprofit-optimal approval rule (margin {:.0}%, LGD {:.0}%): approve when \
         score < {best_tau:.2}; realized profit {:.3}% of volume \
         (break-even PD {:.1}%)",
        economics.margin * 100.0,
        economics.loss_given_default * 100.0,
        best_profit * 100.0,
        economics.break_even_probability() * 100.0
    );

    // Operating point: loosest threshold meeting the bad-debt budget
    // (the "trade-off between the two indicators" the paper's domain
    // experts tune).
    let point = replayed
        .curve
        .iter()
        .filter(|p| p.bad_debt_rate <= BAD_DEBT_BUDGET)
        .max_by(|a, b| a.threshold.partial_cmp(&b.threshold).expect("finite"));
    match point {
        Some(p) => println!(
            "\nchosen operating point: tau={:.2} -> bad debt {:.2}% (budget {:.1}%), \
             refusing {:.2}% of good applicants",
            p.threshold,
            p.bad_debt_rate * 100.0,
            BAD_DEBT_BUDGET * 100.0,
            p.false_positive_rate * 100.0
        ),
        None => println!(
            "\nno threshold meets the {:.1}% budget; tightest point leaves {:.2}%",
            BAD_DEBT_BUDGET * 100.0,
            replayed
                .curve
                .first()
                .map(|p| p.bad_debt_rate * 100.0)
                .unwrap_or(f64::NAN)
        ),
    }
}
