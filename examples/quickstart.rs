//! Quickstart: the full GBDT+LR+LightMIRM pipeline in ~60 lines.
//!
//! Generates a synthetic loan world, trains the feature extractor with
//! ERM, trains the LR head with LightMIRM, and prints the paper's four
//! headline fairness numbers against a plain-ERM head.
//!
//! Run with: `cargo run --release --example quickstart`

use lightmirm::prelude::*;

fn main() {
    // 1. Data: 60k loan applications, 2016-2020, 28 provinces.
    let frame = lightmirm::data::generate(&GeneratorConfig::small(60_000, 7));
    let split = lightmirm::data::temporal_split(&frame, 2020);
    println!(
        "generated {} train rows (2016-19), {} test rows (2020)",
        split.train.len(),
        split.test.len()
    );

    // 2. Feature extraction: a LightGBM-style GBDT trained with ERM; each
    //    tree's leaf index becomes a one-hot feature for the LR head.
    let mut fe_cfg = FeatureExtractorConfig::default();
    fe_cfg.gbdt.n_trees = 48;
    let extractor = FeatureExtractor::fit(&split.train, &fe_cfg).expect("GBDT trains");
    println!(
        "extractor: {} trees -> {}-dim multi-hot space",
        fe_cfg.gbdt.n_trees,
        extractor.n_leaf_features()
    );

    let names = ProvinceCatalog::standard().names();
    let train = extractor
        .to_env_dataset(&split.train, names.clone(), None)
        .expect("transform train");
    let test = extractor
        .to_env_dataset(&split.test, names, None)
        .expect("transform test");

    // 3. Train two LR heads: plain ERM vs LightMIRM (Algorithm 2).
    let erm_cfg = TrainConfig {
        epochs: 120,
        outer_lr: 0.05,
        momentum: 0.9,
        ..Default::default()
    };
    let light_cfg = TrainConfig {
        epochs: 60,
        inner_lr: 0.1,
        outer_lr: 0.3,
        lambda: 0.5,
        reg: 1e-4,
        momentum: 0.0,
        seed: 7,
    };
    let erm = ErmTrainer::new(erm_cfg).fit(&train, None);
    let light = LightMirmTrainer::new(light_cfg).fit(&train, None);

    // 4. Evaluate per province: mean vs worst KS/AUC.
    println!(
        "\n{:<12} {:>7} {:>7} {:>7} {:>7}",
        "", "mKS", "wKS", "mAUC", "wAUC"
    );
    for (name, out) in [("ERM", &erm), ("LightMIRM", &light)] {
        let s = evaluate_filtered(&out.model, &test, 50).expect("scorable");
        println!(
            "{name:<12} {:>7.4} {:>7.4} {:>7.4} {:>7.4}   (worst province: {})",
            s.m_ks, s.w_ks, s.m_auc, s.w_auc, s.worst_ks_env
        );
    }
    println!(
        "\nops: ERM {} | LightMIRM {} (4M per epoch, M = {})",
        erm.ops.total(),
        light.ops.total(),
        train.active_envs().len()
    );
}
