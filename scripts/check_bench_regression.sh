#!/usr/bin/env bash
# Warn-only perf-regression gate over the longitudinal bench trajectory.
#
# The bench bins (`hotpath`, `serve_hotpath`) append one commit- and
# thread-count-stamped JSON line per run to
# results/BENCH_trajectory.jsonl. This script runs the `trajectory_gate`
# bin, which compares the newest run of each (bench, quick, threads)
# cohort against the rolling median of the last $WINDOW prior runs and
# warns about hot-path metrics more than $TOLERANCE slower.
#
# Warn-only by design: CI runners are noisy shared hardware, so a flagged
# slowdown is a prompt to look at the uploaded trajectory artifact, not a
# merge blocker. Pass --strict to turn warnings into a nonzero exit.
#
# Usage: scripts/check_bench_regression.sh [--strict]
#        TRAJECTORY=path WINDOW=5 TOLERANCE=0.2 scripts/check_bench_regression.sh
set -euo pipefail
cd "$(dirname "$0")/.."

TRAJECTORY="${TRAJECTORY:-results/BENCH_trajectory.jsonl}"
WINDOW="${WINDOW:-5}"
TOLERANCE="${TOLERANCE:-0.2}"

# A fresh checkout (or a CI job that never ran the bench bins) has no
# trajectory yet. That is a clean no-op, not an error — say so and skip
# the cargo build entirely.
if [ ! -s "$TRAJECTORY" ]; then
  echo "trajectory gate: no history yet at $TRAJECTORY; run the bench bins to start one"
  exit 0
fi

cargo run --release -p lightmirm-bench --bin trajectory_gate -- \
  --trajectory "$TRAJECTORY" --window "$WINDOW" --tolerance "$TOLERANCE" "$@"
