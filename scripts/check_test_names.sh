#!/usr/bin/env bash
# Tier-1 test-name guard: every test name in the committed baseline
# (ci/tier1-test-names.txt) must still be discovered by
# `cargo test -- --list`. A refactor that silently drops or renames a
# test fails here even if everything that remains passes. New tests are
# always fine; refresh the baseline with `scripts/check_test_names.sh
# --bless` in the same commit that intentionally renames or removes one,
# and say why in the commit message.
#
# `--all-targets` deliberately excludes doctests: their auto-generated
# names embed line numbers and would churn on every unrelated edit.
set -euo pipefail
cd "$(dirname "$0")/.."

baseline=ci/tier1-test-names.txt
current=$(mktemp)
trap 'rm -f "$current"' EXIT

cargo test --workspace --all-targets -q -- --list 2>/dev/null \
  | sed -n 's/: test$//p' | sort -u > "$current"

if ! [ -s "$current" ]; then
  echo "error: test discovery produced no names (build failure?)" >&2
  exit 1
fi

if [ "${1:-}" = "--bless" ]; then
  cp "$current" "$baseline"
  echo "blessed $(wc -l < "$baseline") test names into $baseline"
  exit 0
fi

if ! [ -f "$baseline" ]; then
  echo "error: $baseline missing; generate it with $0 --bless" >&2
  exit 1
fi

missing=$(comm -23 <(sort -u "$baseline") "$current")
if [ -n "$missing" ]; then
  echo "tier-1 tests in $baseline are no longer discovered:" >&2
  echo "$missing" >&2
  echo "(intentional removal/rename? re-bless with $0 --bless)" >&2
  exit 1
fi
echo "all $(wc -l < "$baseline") baseline test names still present"
