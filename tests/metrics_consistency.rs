//! Cross-metric consistency on real pipeline scores: the identities and
//! qualitative relationships a credit-risk reviewer would spot-check.

use lightmirm::metrics::{
    auc, brier_score, expected_calibration_error, gini, ks, lift_table, roc_curve,
};
use lightmirm::prelude::*;
use lightmirm_core::trainers::TrainConfig;

fn scored_test_set() -> (Vec<f64>, Vec<u8>) {
    let frame = lightmirm::data::generate(&GeneratorConfig::small(15_000, 29));
    let split = lightmirm::data::temporal_split(&frame, 2020);
    let mut fe = FeatureExtractorConfig::default();
    fe.gbdt.n_trees = 16;
    let extractor = FeatureExtractor::fit(&split.train, &fe).expect("GBDT trains");
    let names = ProvinceCatalog::standard().names();
    let train = extractor
        .to_env_dataset(&split.train, names.clone(), None)
        .expect("train transform");
    let test = extractor
        .to_env_dataset(&split.test, names, None)
        .expect("test transform");
    let out = LightMirmTrainer::new(TrainConfig {
        epochs: 45,
        inner_lr: 0.1,
        outer_lr: 0.3,
        momentum: 0.0,
        ..Default::default()
    })
    .fit(&train, None);
    let rows = test.all_rows();
    let scores = out.model.predict_rows(&test.x, &rows, &test.env_ids);
    (scores, test.labels.clone())
}

#[test]
fn gini_is_two_auc_minus_one_on_pipeline_scores() {
    let (scores, labels) = scored_test_set();
    let a = auc(&scores, &labels).expect("auc");
    let g = gini(&scores, &labels).expect("gini");
    assert!((g - (2.0 * a - 1.0)).abs() < 1e-12);
    assert!(a > 0.8, "pipeline should rank well (AUC {a:.3})");
}

#[test]
fn ks_is_attained_on_the_roc_curve() {
    // KS equals the maximum of TPR − FPR over the ROC curve.
    let (scores, labels) = scored_test_set();
    let k = ks(&scores, &labels).expect("ks");
    let best_gap = roc_curve(&scores, &labels)
        .expect("roc")
        .iter()
        .map(|p| p.tpr - p.fpr)
        .fold(f64::MIN, f64::max);
    assert!(
        (k - best_gap).abs() < 1e-9,
        "KS {k:.6} must equal max ROC gap {best_gap:.6}"
    );
}

#[test]
fn lift_is_front_loaded_for_a_trained_model() {
    let (scores, labels) = scored_test_set();
    let table = lift_table(&scores, &labels, 10).expect("lift table");
    assert!(
        table[0].lift > 3.0,
        "top decile should concentrate defaults (lift {:.2})",
        table[0].lift
    );
    assert!(
        table.last().expect("deciles").lift < 0.5,
        "bottom decile should be nearly clean"
    );
    // Top 3 deciles should capture the majority of defaults.
    assert!(table[2].cumulative_capture > 0.6);
}

#[test]
fn scores_are_reasonably_calibrated() {
    let (scores, labels) = scored_test_set();
    let brier = brier_score(&scores, &labels).expect("brier");
    let base_rate = labels.iter().filter(|&&y| y != 0).count() as f64 / labels.len() as f64;
    // A useful model beats the constant-base-rate predictor's Brier score.
    let constant_brier = base_rate * (1.0 - base_rate);
    assert!(
        brier < constant_brier,
        "Brier {brier:.4} should beat the uninformed {constant_brier:.4}"
    );
    let ece = expected_calibration_error(&scores, &labels, 10).expect("ece");
    assert!(
        ece < 0.1,
        "LR-head scores should be roughly calibrated (ECE {ece:.3})"
    );
}
