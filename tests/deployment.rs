//! Deployment-path integration: train → bundle → serialize → reload →
//! score, plus drift monitoring on the deployed scores.

use lightmirm::metrics::psi;
use lightmirm::prelude::*;
use lightmirm_core::trainers::TrainConfig;

fn trained_world() -> (
    FeatureExtractor,
    TrainOutput,
    lightmirm::data::LoanFrame,
    EnvDataset,
) {
    let frame = lightmirm::data::generate(&GeneratorConfig::small(10_000, 13));
    let split = lightmirm::data::temporal_split(&frame, 2020);
    let mut fe = FeatureExtractorConfig::default();
    fe.gbdt.n_trees = 10;
    let extractor = FeatureExtractor::fit(&split.train, &fe).expect("GBDT trains");
    let names = ProvinceCatalog::standard().names();
    let train = extractor
        .to_env_dataset(&split.train, names.clone(), None)
        .expect("train transform");
    let test = extractor
        .to_env_dataset(&split.test, names, None)
        .expect("test transform");
    let out = LightMirmTrainer::new(TrainConfig {
        epochs: 8,
        inner_lr: 0.1,
        outer_lr: 0.3,
        momentum: 0.0,
        ..Default::default()
    })
    .fit(&train, None);
    (extractor, out, split.test, test)
}

#[test]
fn bundle_round_trip_scores_match_pipeline() {
    let (extractor, out, frame_test, test) = trained_world();
    let bundle = ModelBundle::new(
        extractor.gbdt().clone(),
        &out.model,
        BundleMetadata {
            trainer: "LightMIRM(L=5,g=0.9)".into(),
            seed: 13,
            notes: "integration test".into(),
        },
    )
    .expect("dimensions match");

    let json = bundle.to_json();
    let reloaded = ModelBundle::from_json(&json).expect("valid bundle");

    // Score the first 200 test rows through both paths.
    let rows: Vec<u32> = (0..200.min(test.n_rows() as u32)).collect();
    let pipeline_scores = out.model.predict_rows(&test.x, &rows, &test.env_ids);
    for (&r, &expected) in rows.iter().zip(&pipeline_scores) {
        let raw = frame_test.row(r as usize);
        let got = reloaded.score(raw, frame_test.province[r as usize]);
        assert!(
            (got - expected).abs() < 1e-12,
            "row {r}: bundle {got} vs pipeline {expected}"
        );
    }
}

#[test]
fn bundle_survives_metadata_inspection() {
    let (extractor, out, _, _) = trained_world();
    let bundle = ModelBundle::new(
        extractor.gbdt().clone(),
        &out.model,
        BundleMetadata {
            trainer: "test-trainer".into(),
            seed: 99,
            notes: "notes".into(),
        },
    )
    .expect("ok");
    let reloaded = ModelBundle::from_json(&bundle.to_json()).expect("valid");
    assert_eq!(reloaded.metadata.trainer, "test-trainer");
    assert_eq!(reloaded.metadata.seed, 99);
}

#[test]
fn score_drift_between_train_and_2020_registers_on_psi() {
    let frame = lightmirm::data::generate(&GeneratorConfig::small(20_000, 13));
    let split = lightmirm::data::temporal_split(&frame, 2020);
    let mut fe = FeatureExtractorConfig::default();
    fe.gbdt.n_trees = 16;
    let extractor = FeatureExtractor::fit(&split.train, &fe).expect("GBDT trains");
    // The raw GBDT's scores on train vs 2020: the 2020 concept shift must
    // register as a nonzero PSI, and a same-population control must not.
    let train_scores = extractor
        .gbdt()
        .predict_proba_batch(split.train.feature_matrix());
    let test_scores = extractor
        .gbdt()
        .predict_proba_batch(split.test.feature_matrix());
    let shifted = psi(&train_scores, &test_scores, 10).expect("PSI");
    let control = psi(&train_scores, &train_scores, 10).expect("PSI");
    assert!(control.psi < 1e-9);
    assert!(
        shifted.psi > control.psi + 1e-4,
        "2020 shift should register: {:.5}",
        shifted.psi
    );
}
