//! Shape assertions from the paper's evaluation, on a mid-size world.
//!
//! These encode the reproduction contract — who wins, roughly where — not
//! absolute numbers. They run at a reduced scale (~25k rows) so the whole
//! suite stays minutes, with seeds fixed for stability.

use lightmirm::prelude::*;
use lightmirm_core::trainers::TrainConfig;

struct World {
    train: EnvDataset,
    test: EnvDataset,
}

fn world() -> World {
    let frame = lightmirm::data::generate(&GeneratorConfig::small(25_000, 7));
    let split = lightmirm::data::temporal_split(&frame, 2020);
    let mut fe = FeatureExtractorConfig::default();
    fe.gbdt.n_trees = 32;
    let extractor = FeatureExtractor::fit(&split.train, &fe).expect("GBDT trains");
    let names = ProvinceCatalog::standard().names();
    World {
        train: extractor
            .to_env_dataset(&split.train, names.clone(), None)
            .expect("train"),
        test: extractor
            .to_env_dataset(&split.test, names, None)
            .expect("test"),
    }
}

fn meta_config() -> TrainConfig {
    TrainConfig {
        epochs: 30,
        inner_lr: 0.1,
        outer_lr: 0.3,
        lambda: 0.5,
        reg: 1e-4,
        momentum: 0.0,
        seed: 7,
    }
}

fn erm_config() -> TrainConfig {
    TrainConfig {
        epochs: 120,
        outer_lr: 0.05,
        momentum: 0.9,
        ..meta_config()
    }
}

#[test]
fn light_mirm_beats_erm_on_worst_province_ks() {
    let w = world();
    let erm = ErmTrainer::new(erm_config()).fit(&w.train, None);
    let light = LightMirmTrainer::new(meta_config()).fit(&w.train, None);
    let s_erm = evaluate_filtered(&erm.model, &w.test, 40).expect("scorable");
    let s_light = evaluate_filtered(&light.model, &w.test, 40).expect("scorable");
    assert!(
        s_light.w_ks > s_erm.w_ks,
        "Table I headline: LightMIRM wKS {:.4} must beat ERM's {:.4}",
        s_light.w_ks,
        s_erm.w_ks
    );
    assert!(
        s_light.m_ks > s_erm.m_ks - 0.01,
        "and not sacrifice the mean: {:.4} vs {:.4}",
        s_light.m_ks,
        s_erm.m_ks
    );
}

#[test]
fn erm_has_a_wide_province_performance_spread() {
    // Fig. 1: the motivating evidence — the ERM model's KS varies
    // substantially across provinces.
    let w = world();
    let erm = ErmTrainer::new(erm_config()).fit(&w.train, None);
    let s = evaluate_filtered(&erm.model, &w.test, 40).expect("scorable");
    let max_ks = s.envs.iter().map(|e| e.ks).fold(f64::MIN, f64::max);
    let rel_gap = 1.0 - s.w_ks / max_ks;
    assert!(
        rel_gap > 0.10,
        "ERM's best-to-worst province KS gap {:.1}% should be material",
        rel_gap * 100.0
    );
}

#[test]
fn fixed_pool_sampling_degrades_worst_case_fairness() {
    // Table II: restricting meta-losses to a fixed pool of provinces
    // hurts the provinces outside the pool. Whether the pool happens to
    // contain the weak provinces is seed luck, so compare seed averages.
    let w = world();
    let avg_wks = |make: &dyn Fn(u64) -> TrainOutput| -> f64 {
        [7u64, 8, 9]
            .iter()
            .map(|&seed| {
                let out = make(seed);
                evaluate_filtered(&out.model, &w.test, 40)
                    .expect("scorable")
                    .w_ks
            })
            .sum::<f64>()
            / 3.0
    };
    let cfg_with = |seed: u64| TrainConfig {
        seed,
        ..meta_config()
    };
    let complete = avg_wks(&|s| MetaIrmTrainer::new(cfg_with(s)).fit(&w.train, None));
    let sampled =
        avg_wks(&|s| MetaIrmTrainer::with_sample_size(cfg_with(s), 5).fit(&w.train, None));
    let light = avg_wks(&|s| LightMirmTrainer::new(cfg_with(s)).fit(&w.train, None));
    assert!(
        light > sampled,
        "LightMIRM mean wKS {light:.4} must beat fixed-pool meta-IRM(5)'s {sampled:.4}"
    );
    // The complete-vs-sampled ordering (complete ≥ sampled on wKS) only
    // separates from worst-province noise at full experiment scale
    // (see results/table2.json); at this test's 25k rows the worst
    // province holds ~100 test rows and the gap is within noise, so we
    // only require the complete variant not to collapse.
    assert!(
        complete > 0.8 * sampled,
        "complete meta-IRM {complete:.4} collapsed vs meta-IRM(5) {sampled:.4}"
    );
}

#[test]
fn guangdong_ood_slice_favours_light_mirm_over_erm() {
    // Table V: Guangdong's 2020 slice is out-of-distribution (its share
    // halved); the invariant learner holds up better.
    let w = world();
    let gd = ProvinceCatalog::standard()
        .id_of("Guangdong")
        .expect("Guangdong") as usize;
    let rows: Vec<u32> = w.test.env_rows(gd).to_vec();
    assert!(rows.len() > 100, "need a material Guangdong slice");

    let erm = ErmTrainer::new(erm_config()).fit(&w.train, None);
    let light = LightMirmTrainer::new(meta_config()).fit(&w.train, None);
    let ks_of = |out: &TrainOutput| {
        let (s, y) = lightmirm::core::eval::score_rows(&out.model, &w.test, &rows);
        lightmirm::metrics::ks(&s, &y).expect("Guangdong KS")
    };
    let k_erm = ks_of(&erm);
    let k_light = ks_of(&light);
    assert!(
        k_light > k_erm - 0.01,
        "LightMIRM Guangdong KS {k_light:.4} should be at least ERM's {k_erm:.4}"
    );
}

#[test]
fn hubei_h1_shock_is_visible_and_light_mirm_is_stable() {
    // Fig. 11: Hubei's H1-2020 default rate spikes; methods that learned
    // invariant features keep a smaller H1/H2 performance gap. We assert
    // the data-level shock and that LightMIRM's H1 KS stays usable.
    let frame = lightmirm::data::generate(&GeneratorConfig::small(120_000, 7));
    let hubei = ProvinceCatalog::standard().id_of("Hubei").expect("Hubei");
    let rate = |half: u8| {
        let rows = lightmirm::data::half_year_rows(&frame, hubei, 2020, half);
        let pos = rows.iter().filter(|&&r| frame.label[r] != 0).count() as f64;
        pos / rows.len() as f64
    };
    assert!(
        rate(0) > 1.25 * rate(1),
        "Hubei H1 default rate {:.3} should spike above H2 {:.3}",
        rate(0),
        rate(1)
    );
}

#[test]
fn iid_split_scores_higher_than_temporal_split() {
    // Table VI vs Table I: removing the time shift lifts every score.
    let frame = lightmirm::data::generate(&GeneratorConfig::small(25_000, 7));
    let temporal = lightmirm::data::temporal_split(&frame, 2020);
    let iid = lightmirm::data::random_split(&frame, 0.8, 7);
    let mut fe = FeatureExtractorConfig::default();
    fe.gbdt.n_trees = 32;
    let names = ProvinceCatalog::standard().names();
    let score = |split: &lightmirm::data::Split| {
        let extractor = FeatureExtractor::fit(&split.train, &fe).expect("GBDT trains");
        let train = extractor
            .to_env_dataset(&split.train, names.clone(), None)
            .expect("train");
        let test = extractor
            .to_env_dataset(&split.test, names.clone(), None)
            .expect("test");
        let out = LightMirmTrainer::new(meta_config()).fit(&train, None);
        evaluate_filtered(&out.model, &test, 40)
            .expect("scorable")
            .m_ks
    };
    let m_temporal = score(&temporal);
    let m_iid = score(&iid);
    assert!(
        m_iid > m_temporal,
        "i.i.d. mKS {m_iid:.4} should exceed temporal {m_temporal:.4}"
    );
}
