//! Cross-crate integration: the full GBDT+LR pipeline with every trainer,
//! determinism, and the complexity contract.

use lightmirm::prelude::*;
use lightmirm_core::trainers::TrainConfig;

fn small_world() -> (EnvDataset, EnvDataset) {
    let frame = lightmirm::data::generate(&GeneratorConfig::small(12_000, 5));
    let split = lightmirm::data::temporal_split(&frame, 2020);
    let mut fe = FeatureExtractorConfig::default();
    fe.gbdt.n_trees = 12;
    let extractor = FeatureExtractor::fit(&split.train, &fe).expect("GBDT trains");
    let names = ProvinceCatalog::standard().names();
    (
        extractor
            .to_env_dataset(&split.train, names.clone(), None)
            .expect("train transform"),
        extractor
            .to_env_dataset(&split.test, names, None)
            .expect("test transform"),
    )
}

fn meta_config(epochs: usize) -> TrainConfig {
    TrainConfig {
        epochs,
        inner_lr: 0.1,
        outer_lr: 0.3,
        lambda: 0.5,
        reg: 1e-4,
        momentum: 0.0,
        seed: 9,
    }
}

fn erm_config(epochs: usize) -> TrainConfig {
    TrainConfig {
        epochs,
        outer_lr: 0.05,
        momentum: 0.9,
        ..meta_config(epochs)
    }
}

#[test]
fn every_trainer_produces_a_scorable_model() {
    let (train, test) = small_world();
    let outputs: Vec<(&str, TrainOutput)> = vec![
        ("erm", ErmTrainer::new(erm_config(20)).fit(&train, None)),
        (
            "finetune",
            FineTuneTrainer::new(erm_config(20), 5, 0.05).fit(&train, None),
        ),
        (
            "upsample",
            UpSamplingTrainer::new(erm_config(20)).fit(&train, None),
        ),
        (
            "dro",
            GroupDroTrainer::new(erm_config(20), 1.0).fit(&train, None),
        ),
        (
            "vrex",
            VRexTrainer::new(erm_config(20), 2.0).fit(&train, None),
        ),
        (
            "irmv1",
            Irmv1Trainer::new(erm_config(20), 1.0).fit(&train, None),
        ),
        (
            "meta",
            MetaIrmTrainer::new(meta_config(5)).fit(&train, None),
        ),
        (
            "light",
            LightMirmTrainer::new(meta_config(5)).fit(&train, None),
        ),
    ];
    for (name, out) in &outputs {
        let summary =
            evaluate_filtered(&out.model, &test, 20).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            summary.m_auc > 0.6,
            "{name}: test mAUC {:.3} should beat chance clearly",
            summary.m_auc
        );
        assert!(summary.w_ks >= 0.0 && summary.w_ks <= 1.0, "{name}");
    }
}

#[test]
fn pipeline_is_deterministic_end_to_end() {
    let run = || {
        let (train, test) = small_world();
        let out = LightMirmTrainer::new(meta_config(5)).fit(&train, None);
        let s = evaluate_filtered(&out.model, &test, 20).expect("scorable");
        (out.model.global().weights.clone(), s.m_ks, s.w_ks)
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0, "weights must be bit-identical across runs");
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
}

#[test]
fn op_counts_honour_the_papers_complexity_table() {
    let (train, _) = small_world();
    let m = train.active_envs().len() as u64;
    let epochs = 3u64;

    let meta = MetaIrmTrainer::new(meta_config(epochs as usize)).fit(&train, None);
    assert_eq!(meta.ops.total(), epochs * 2 * m * m, "meta-IRM is O(2M^2)");

    let light = LightMirmTrainer::new(meta_config(epochs as usize)).fit(&train, None);
    assert_eq!(light.ops.total(), epochs * 4 * m, "LightMIRM is O(4M)");

    // Both pay exactly M second-order HVPs per epoch.
    assert_eq!(meta.ops.hvp, epochs * m);
    assert_eq!(light.ops.hvp, epochs * m);
}

#[test]
fn light_mirm_speedup_holds_in_wall_clock_too() {
    let (train, _) = small_world();
    let t0 = std::time::Instant::now();
    let _ = MetaIrmTrainer::new(meta_config(3)).fit(&train, None);
    let meta_time = t0.elapsed();
    let t1 = std::time::Instant::now();
    let _ = LightMirmTrainer::new(meta_config(3)).fit(&train, None);
    let light_time = t1.elapsed();
    assert!(
        meta_time > 2 * light_time,
        "meta-IRM {meta_time:?} should dwarf LightMIRM {light_time:?}"
    );
}

#[test]
fn trainers_cope_with_unseen_test_provinces() {
    // Train on a frame missing some provinces entirely, evaluate on the
    // full test set: prediction must not panic and fallback paths engage.
    let frame = lightmirm::data::generate(&GeneratorConfig::small(8_000, 5));
    let split = lightmirm::data::temporal_split(&frame, 2020);
    let keep: Vec<usize> = split
        .train
        .filter_rows(|_, _, p| p < 6)
        .into_iter()
        .collect();
    let reduced = split.train.select(&keep);
    let mut fe = FeatureExtractorConfig::default();
    fe.gbdt.n_trees = 8;
    let extractor = FeatureExtractor::fit(&reduced, &fe).expect("GBDT trains");
    let names = ProvinceCatalog::standard().names();
    let train = extractor
        .to_env_dataset(&reduced, names.clone(), None)
        .expect("train transform");
    let test = extractor
        .to_env_dataset(&split.test, names, None)
        .expect("test transform");

    let out = FineTuneTrainer::new(erm_config(10), 3, 0.05).fit(&train, None);
    // Test rows include provinces >= 6 never seen in training.
    let rows = test.all_rows();
    let scores = out.model.predict_rows(&test.x, &rows, &test.env_ids);
    assert_eq!(scores.len(), rows.len());
    assert!(scores
        .iter()
        .all(|p| p.is_finite() && (0.0..=1.0).contains(p)));
}
