//! End-to-end robustness to missing feature values: the GBDT bins NaN to
//! the lowest bin at fit time and routes NaN right at prediction time, so
//! the whole pipeline must train and score on platform-realistic data
//! with failed bureau pulls.

use lightmirm::prelude::*;
use lightmirm_core::trainers::TrainConfig;

#[test]
fn pipeline_trains_and_scores_with_missing_features() {
    let mut cfg = GeneratorConfig::small(12_000, 19);
    cfg.missing_rate = 0.08;
    let frame = lightmirm::data::generate(&cfg);
    let split = lightmirm::data::temporal_split(&frame, 2020);

    let mut fe = FeatureExtractorConfig::default();
    fe.gbdt.n_trees = 12;
    let extractor = FeatureExtractor::fit(&split.train, &fe).expect("GBDT trains on NaNs");
    let names = ProvinceCatalog::standard().names();
    let train = extractor
        .to_env_dataset(&split.train, names.clone(), None)
        .expect("train transform");
    let test = extractor
        .to_env_dataset(&split.test, names, None)
        .expect("test transform");

    let out = LightMirmTrainer::new(TrainConfig {
        epochs: 10,
        inner_lr: 0.1,
        outer_lr: 0.3,
        momentum: 0.0,
        ..Default::default()
    })
    .fit(&train, None);
    let summary = evaluate_filtered(&out.model, &test, 20).expect("scorable");
    assert!(
        summary.m_auc > 0.7,
        "pipeline should stay predictive under 8% missingness (mAUC {:.3})",
        summary.m_auc
    );
}

#[test]
fn missingness_degrades_but_does_not_break_the_extractor() {
    let seed = 23;
    let auc_at = |missing_rate: f64| {
        let mut cfg = GeneratorConfig::small(12_000, seed);
        cfg.missing_rate = missing_rate;
        let frame = lightmirm::data::generate(&cfg);
        let split = lightmirm::data::temporal_split(&frame, 2020);
        let mut fe = FeatureExtractorConfig::default();
        fe.gbdt.n_trees = 16;
        let extractor = FeatureExtractor::fit(&split.train, &fe).expect("fits");
        let probs = extractor
            .gbdt()
            .predict_proba_batch(split.test.feature_matrix());
        lightmirm::metrics::auc(&probs, &split.test.label).expect("scorable")
    };
    let clean = auc_at(0.0);
    let heavy = auc_at(0.3);
    assert!(
        heavy > 0.65,
        "even 30% missingness keeps signal ({heavy:.3})"
    );
    assert!(
        clean > heavy - 0.02,
        "clean data should not be materially worse: {clean:.3} vs {heavy:.3}"
    );
}
