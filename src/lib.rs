//! `lightmirm` — umbrella crate of the LightMIRM reproduction.
//!
//! Re-exports the workspace's public API in one place:
//!
//! - [`metrics`] — AUC/KS, ROC sweeps, per-province fairness summaries;
//! - [`data`] (crate `loansim`) — the synthetic auto-loan platform with
//!   province environments and temporal drift;
//! - [`gbdt`] — the LightGBM-style feature extractor;
//! - [`autodiff`] — reverse-mode tape with double backward;
//! - [`core`] (crate `lightmirm-core`) — the GBDT+LR pipeline and the
//!   trainers: ERM, fine-tuning, up-sampling, Group DRO, V-REx, IRMv1,
//!   meta-IRM, and LightMIRM.
//!
//! See the `examples/` directory for runnable end-to-end walkthroughs and
//! `crates/experiments` for the per-table/per-figure regenerators.
//!
//! ```
//! use lightmirm::prelude::*;
//!
//! let frame = lightmirm::data::generate(&lightmirm::data::GeneratorConfig::small(800, 4));
//! let split = lightmirm::data::temporal_split(&frame, 2020);
//! let mut fe = FeatureExtractorConfig::default();
//! fe.gbdt.n_trees = 6;
//! let extractor = FeatureExtractor::fit(&split.train, &fe).unwrap();
//! assert!(extractor.n_leaf_features() > 0);
//! ```

pub use lightmirm_autodiff as autodiff;
pub use lightmirm_core as core;
pub use lightmirm_gbdt as gbdt;
pub use lightmirm_metrics as metrics;
pub use loansim as data;

/// One-stop imports for applications.
pub mod prelude {
    pub use lightmirm_core::prelude::*;
    pub use lightmirm_core::trainers::TrainConfig;
    pub use lightmirm_gbdt::{Gbdt, GbdtConfig};
    pub use lightmirm_metrics::{auc, ks, FairnessSummary};
    pub use loansim::{GeneratorConfig, LoanFrame, ProvinceCatalog};
}
